"""Fluid-backend tests: validation, guards, determinism, accuracy bounds."""

from __future__ import annotations

import math

import pytest

from repro.cluster.failures import FailureModel
from repro.cluster.fluid import BatchTimeFit, TraceProfile
from repro.cluster.resilience import ResilienceConfig
from repro.cluster.scheduler import ColocatedPool, InstanceSpec, PhasePools
from repro.cluster.simulator import ColocatedSimulator, ServingSimulator, SimConfig
from repro.errors import SpecError
from repro.exec.ensemble import aggregate_reports
from repro.exec.sharding import run_sharded
from repro.hardware.gpu import H100
from repro.workloads.models import LLAMA3_8B
from repro.workloads.traces import LengthDistribution, TraceConfig, generate_trace


def pools(n_prefill=1, n_decode=1, **kw) -> PhasePools:
    base = dict(
        prefill=InstanceSpec(LLAMA3_8B, H100, 1),
        n_prefill=n_prefill,
        decode=InstanceSpec(LLAMA3_8B, H100, 1),
        n_decode=n_decode,
        max_prefill_batch=4,
        max_decode_batch=64,
    )
    base.update(kw)
    return PhasePools(**base)


def colo(n_instances=2, **kw) -> ColocatedPool:
    base = dict(
        instance=InstanceSpec(LLAMA3_8B, H100, 1),
        n_instances=n_instances,
        max_decode_batch=64,
        chunk_tokens=512,
    )
    base.update(kw)
    return ColocatedPool(**base)


def trace(rate=5.0, duration=20.0, seed=0, output_tokens=50, **kw):
    return generate_trace(
        TraceConfig(
            rate=rate, duration=duration,
            output_tokens=output_tokens, output_spread=0.3, **kw,
        ),
        seed=seed,
    )


FLUID = SimConfig(backend="fluid")
EVENT = SimConfig()


class TestConfigValidation:
    def test_default_backend_is_event(self):
        assert SimConfig().backend == "event"

    def test_unknown_backend_rejected(self):
        with pytest.raises(SpecError, match="backend"):
            SimConfig(backend="magic")

    def test_fluid_with_resilience_rejected(self):
        with pytest.raises(SpecError, match="resilience"):
            SimConfig(backend="fluid", resilience=ResilienceConfig(deadline_s=30.0))


class TestCompositionGuards:
    def test_fluid_with_failure_model_rejected(self):
        with pytest.raises(SpecError, match="failures"):
            ServingSimulator(
                pools(), FLUID, failure_model=FailureModel(mtbf=3600.0, mttr=60.0)
            )

    def test_fluid_with_scripted_failures_rejected(self):
        with pytest.raises(SpecError, match="failures"):
            ServingSimulator(pools(), FLUID, failures=[(5.0, "decode", 0, 2.0)])

    def test_fluid_with_controller_rejected(self):
        with pytest.raises(SpecError, match="elastic"):
            ServingSimulator(pools(n_decode=2), FLUID, controller="reactive")

    def test_fluid_colocated_failure_model_rejected(self):
        with pytest.raises(SpecError, match="failures"):
            ColocatedSimulator(
                colo(), FLUID, failure_model=FailureModel(mtbf=3600.0, mttr=60.0)
            )

    def test_sharding_rejects_fluid(self):
        with pytest.raises(SpecError, match="event"):
            run_sharded(pools(n_decode=2), trace(), FLUID, shards=2)

    def test_event_backend_still_accepts_failures(self):
        report = ServingSimulator(
            pools(), EVENT, failure_model=FailureModel(mtbf=3600.0, mttr=60.0)
        ).run(trace(duration=5.0))
        assert report.backend == "event"


class TestDeterminism:
    def test_phase_split_bit_identical(self):
        t = trace(seed=3)
        a = ServingSimulator(pools(), FLUID).run(t)
        b = ServingSimulator(pools(), FLUID).run(t)
        assert a == b

    def test_colocated_bit_identical(self):
        t = trace(seed=7)
        a = ColocatedSimulator(colo(), FLUID).run(t)
        b = ColocatedSimulator(colo(), FLUID).run(t)
        assert a == b


class TestProvenance:
    def test_fluid_report_is_labelled(self):
        report = ServingSimulator(pools(), FLUID).run(trace(duration=5.0))
        assert report.backend == "fluid"

    def test_event_report_is_labelled(self):
        report = ServingSimulator(pools(), EVENT).run(trace(duration=5.0))
        assert report.backend == "event"

    def test_simulation_table_shows_backend_column(self):
        from repro.analysis.report import simulation_table

        t = trace(duration=5.0)
        fluid = ServingSimulator(pools(), FLUID).run(t)
        event = ServingSimulator(pools(), EVENT).run(t)
        mixed = simulation_table({"fluid": fluid, "event": event})
        assert "backend" in mixed
        event_only = simulation_table({"event": event})
        assert "backend" not in event_only

    def test_ensemble_aggregates_backend(self):
        t = trace(duration=5.0)
        r = ServingSimulator(pools(), FLUID).run(t)
        agg = aggregate_reports([r, r], seeds=[0, 1])
        assert agg.mean.backend == "fluid"

    def test_ensemble_rejects_mixed_backends(self):
        t = trace(duration=5.0)
        fluid = ServingSimulator(pools(), FLUID).run(t)
        event = ServingSimulator(pools(), EVENT).run(t)
        with pytest.raises(SpecError, match="mixed backends"):
            aggregate_reports([fluid, event], seeds=[0, 1])


class TestFluidProperties:
    def test_all_complete_under_light_load(self):
        t = trace(rate=2.0)
        report = ServingSimulator(pools(), FLUID).run(t)
        assert report.completed == len(t)
        assert report.dropped == 0

    def test_latency_monotone_in_arrival_rate(self):
        # Deterministic arrivals and constant outputs isolate the queueing
        # effect: more load can only push p99s up.
        p99s = []
        for rate in (2.0, 8.0, 16.0):
            t = trace(
                rate=rate, duration=30.0,
                poisson_arrivals=False, output_dist=LengthDistribution.CONSTANT,
            )
            report = ServingSimulator(pools(), FLUID).run(t)
            p99s.append((report.ttft_p99, report.e2e_p99))
        for (lo_t, lo_e), (hi_t, hi_e) in zip(p99s, p99s[1:]):
            assert hi_t >= lo_t - 1e-9
            assert hi_e >= lo_e - 1e-9

    def test_nan_not_zero_when_nothing_completes(self):
        report = ServingSimulator(pools(), SimConfig(backend="fluid", max_sim_time=0.1)).run(
            trace(rate=2.0)
        )
        assert report.completed == 0
        assert math.isnan(report.ttft_p99)
        assert math.isnan(report.e2e_p50)

    def test_economics_attached(self):
        report = ServingSimulator(pools(), FLUID).run(trace())
        assert report.gpu_seconds > 0
        assert report.usd_per_mtoken > 0


class TestAccuracyVsEvent:
    """Fluid must land within pinned relative bounds of event truth."""

    def assert_close(self, fluid, event, bounds):
        for name, bound in bounds.items():
            f, e = getattr(fluid, name), getattr(event, name)
            rel = abs(f - e) / max(abs(e), 1e-12)
            assert rel <= bound, f"{name}: fluid {f:.5g} vs event {e:.5g} (rel {rel:.3f})"

    def test_phase_split_bounds(self):
        t = trace(rate=5.0, duration=20.0, output_tokens=80)
        fluid = ServingSimulator(pools(), FLUID).run(t)
        event = ServingSimulator(pools(), EVENT).run(t)
        assert fluid.completed == event.completed
        self.assert_close(
            fluid, event,
            {
                "ttft_p50": 0.05,
                # p99 over ~90 requests on a 1-instance pool is dominated by
                # Poisson clustering the fluid limit smooths; the benchmark
                # goldens (larger pools) pin the tighter 0.25 bound.
                "ttft_p99": 0.40,
                "tbt_mean": 0.05,
                "e2e_p50": 0.10,
                "e2e_p99": 0.10,
                "output_tokens_per_s": 0.05,
                "decode_utilization": 0.15,
            },
        )

    def test_colocated_bounds(self):
        t = trace(rate=5.0, duration=20.0, output_tokens=80)
        fluid = ColocatedSimulator(colo(), FLUID).run(t)
        event = ColocatedSimulator(colo(), EVENT).run(t)
        assert fluid.completed == event.completed
        self.assert_close(
            fluid, event,
            {
                "ttft_p50": 0.15,
                "ttft_p99": 0.35,
                "tbt_mean": 0.15,
                "e2e_p50": 0.20,
                "e2e_p99": 0.20,
                "output_tokens_per_s": 0.05,
            },
        )


class TestBuildingBlocks:
    def test_trace_profile_conserves_mass(self):
        t = trace(rate=4.0, duration=25.0)
        profile = TraceProfile.from_trace(t)
        assert profile.n_requests == len(t)
        integrated = sum(profile.rates) * profile.bin_s
        assert integrated == pytest.approx(len(t))
        assert profile.span >= profile.t_end

    def test_trace_profile_empty(self):
        profile = TraceProfile.from_trace([])
        assert profile.n_requests == 0
        assert profile.rate_at(0.0) == 0.0

    def test_batch_time_fit_interpolates_samples_exactly(self):
        fit = BatchTimeFit.from_samples([1.0, 4.0, 16.0], [0.01, 0.02, 0.05])
        assert fit.time_at(4.0) == pytest.approx(0.02)
        assert 0.02 < fit.time_at(8.0) < 0.05
        assert fit.d1 > 0
