"""Policy-layer tests: registries, bundles, and each policy's behaviour."""

from __future__ import annotations

from collections import deque

import pytest

from repro.cluster.policies import (
    ADMISSION_POLICIES,
    POLICY_BUNDLES,
    PREFILL_POLICIES,
    REQUEUE_POLICIES,
    ROUTING_POLICIES,
    BackOfQueueRequeue,
    FCFSAdmission,
    FCFSPrefillBatching,
    FrontOfQueueRequeue,
    IndexOrderRouting,
    LeastLoadedRouting,
    PolicyBundle,
    RoundRobinRouting,
    SJFPrefillBatching,
    SmallestFirstAdmission,
    get_policy_bundle,
)
from repro.errors import RegistryError, SpecError
from repro.workloads.traces import Request


def req(rid, prompt=100, output=50, arrival=0.0) -> Request:
    return Request(request_id=rid, arrival=arrival, prompt_tokens=prompt, output_tokens=output)


class TestRegistries:
    def test_bundle_round_trip(self):
        """Every registered bundle resolves by name to a complete bundle."""
        for name in POLICY_BUNDLES.names():
            bundle = get_policy_bundle(name)
            assert isinstance(bundle, PolicyBundle)
            assert bundle.name == name
            assert name in POLICY_BUNDLES
            assert bundle.describe()

    def test_policy_registries_round_trip(self):
        for registry, classes in (
            (ROUTING_POLICIES, (IndexOrderRouting, LeastLoadedRouting, RoundRobinRouting)),
            (PREFILL_POLICIES, (FCFSPrefillBatching, SJFPrefillBatching)),
            (ADMISSION_POLICIES, (FCFSAdmission, SmallestFirstAdmission)),
            (REQUEUE_POLICIES, (BackOfQueueRequeue, FrontOfQueueRequeue)),
        ):
            assert set(registry.names()) == {cls.name for cls in classes}
            for cls in classes:
                assert registry.get(cls.name) is cls

    def test_unknown_bundle_raises(self):
        with pytest.raises(RegistryError):
            get_policy_bundle("nope")

    def test_bad_spec_raises(self):
        with pytest.raises(SpecError):
            get_policy_bundle(42)

    def test_default_is_fcfs(self):
        assert get_policy_bundle(None).name == "fcfs"

    def test_instances_pass_through(self):
        bundle = get_policy_bundle("fcfs")
        assert get_policy_bundle(bundle) is bundle

    def test_fresh_instances_per_lookup(self):
        """Stateful policies must not leak between simulations."""
        a = get_policy_bundle("round-robin")
        b = get_policy_bundle("round-robin")
        assert a.routing is not b.routing


class TestRouting:
    def test_index_order(self):
        assert IndexOrderRouting().order([5.0, 1.0, 3.0]) == [0, 1, 2]

    def test_least_loaded_stable(self):
        assert LeastLoadedRouting().order([2.0, 1.0, 1.0]) == [1, 2, 0]

    def test_round_robin_rotates(self):
        rr = RoundRobinRouting()
        assert rr.order([0, 0, 0]) == [0, 1, 2]
        assert rr.order([0, 0, 0]) == [1, 2, 0]
        assert rr.order([0, 0, 0]) == [2, 0, 1]
        assert rr.order([]) == []


class TestPrefillBatching:
    def test_fcfs_takes_oldest(self):
        queue = deque(req(i, prompt=100 * (i + 1)) for i in range(4))
        batch = FCFSPrefillBatching().select(queue, 2)
        assert [r.request_id for r in batch] == [0, 1]
        assert [r.request_id for r in queue] == [2, 3]

    def test_sjf_takes_shortest(self):
        queue = deque(
            [req(0, prompt=900), req(1, prompt=100), req(2, prompt=500), req(3, prompt=100)]
        )
        batch = SJFPrefillBatching().select(queue, 2)
        assert [r.request_id for r in batch] == [1, 3]  # stable on ties
        assert [r.request_id for r in queue] == [0, 2]

    def test_empty_queue(self):
        assert SJFPrefillBatching().select(deque(), 4) == []


class TestAdmission:
    def test_fcfs_stops_at_first_misfit(self):
        queue = deque([req(0, prompt=50, output=50), req(1, prompt=900, output=100),
                       req(2, prompt=10, output=10)])
        admitted = FCFSAdmission().select(queue, slots=8, budget=200)
        # 100 fits, 1000 does not -> head-of-line blocking stops admission.
        assert [r.request_id for r in admitted] == [0]
        assert [r.request_id for r in queue] == [1, 2]

    def test_smallest_first_packs_around_blocker(self):
        queue = deque([req(0, prompt=50, output=50), req(1, prompt=900, output=100),
                       req(2, prompt=10, output=10)])
        admitted = SmallestFirstAdmission().select(queue, slots=8, budget=200)
        assert [r.request_id for r in admitted] == [2, 0]
        assert [r.request_id for r in queue] == [1]

    def test_slot_bound(self):
        queue = deque(req(i, prompt=1, output=1) for i in range(5))
        assert len(FCFSAdmission().select(queue, slots=3, budget=10**6)) == 3


class TestRequeue:
    def test_back_and_front(self):
        queue = deque([req(0)])
        BackOfQueueRequeue().requeue(req(1), queue)
        FrontOfQueueRequeue().requeue(req(2), queue)
        assert [r.request_id for r in queue] == [2, 0, 1]

    def test_requeue_all_preserves_batch_order(self):
        """The first victim of a batch stays first among the batch wherever
        the policy inserts it."""
        batch = [req(1), req(2), req(3)]
        back = deque([req(0)])
        BackOfQueueRequeue().requeue_all(batch, back)
        assert [r.request_id for r in back] == [0, 1, 2, 3]
        front = deque([req(0)])
        FrontOfQueueRequeue().requeue_all(batch, front)
        assert [r.request_id for r in front] == [1, 2, 3, 0]
