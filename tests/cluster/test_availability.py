"""Monte-Carlo availability tests — the hot-spare argument."""

from __future__ import annotations

import pytest

from repro.cluster.availability import (
    SparePolicy,
    simulate_availability,
    spares_for_target,
)
from repro.cluster.failures import FailureModel, scaled_lite_failure_model
from repro.errors import SpecError
from repro.units import DAY, HOUR


FAST_FAILING = FailureModel(mtbf=200 * HOUR, mttr=24 * HOUR)


class TestSimulation:
    def test_deterministic_given_seed(self):
        a = simulate_availability(2, 4, FAST_FAILING, seed=7, horizon=30 * DAY)
        b = simulate_availability(2, 4, FAST_FAILING, seed=7, horizon=30 * DAY)
        assert a == b

    def test_availability_in_unit_interval(self):
        result = simulate_availability(2, 4, FAST_FAILING, seed=1, horizon=30 * DAY)
        assert 0.0 <= result.instance_availability <= 1.0

    def test_no_failures_perfect_availability(self):
        reliable = FailureModel(mtbf=1e9 * HOUR)
        result = simulate_availability(2, 4, reliable, seed=1, horizon=30 * DAY)
        assert result.instance_availability == 1.0
        assert result.failures == 0

    def test_spares_improve_availability(self):
        without = simulate_availability(
            4, 8, FAST_FAILING, SparePolicy(spares=0), horizon=60 * DAY, seed=3
        )
        with_spares = simulate_availability(
            4, 8, FAST_FAILING, SparePolicy(spares=4), horizon=60 * DAY, seed=3
        )
        assert with_spares.instance_availability > without.instance_availability

    def test_swap_time_bounds_outage_with_spares(self):
        """With a spare always free, outages last ~swap_time, not MTTR."""
        result = simulate_availability(
            2, 4, FAST_FAILING, SparePolicy(spares=8, swap_time=120.0),
            horizon=60 * DAY, seed=5,
        )
        assert result.failures > 0
        assert result.mean_outage < 10 * 120.0  # far below the 24h MTTR

    def test_validation(self):
        with pytest.raises(SpecError):
            simulate_availability(0, 4, FAST_FAILING)
        with pytest.raises(SpecError):
            simulate_availability(2, 4, FAST_FAILING, horizon=-1.0)
        with pytest.raises(SpecError):
            SparePolicy(spares=-1)

    def test_describe(self):
        result = simulate_availability(2, 4, FAST_FAILING, seed=1, horizon=10 * DAY)
        assert "availability" in result.describe()


class TestSpareOverheadClaim:
    """Section 3: spares are proportionally cheaper for Lite fleets."""

    def test_spare_policy_overhead(self):
        assert SparePolicy(spares=2).overhead(serving_gpus=8) == 0.25
        assert SparePolicy(spares=2).overhead(serving_gpus=32) == 0.0625

    def test_one_lite_spare_is_quarter_the_silicon(self):
        """One spare unit of capacity costs 4x less silicon for Lite:
        equal spare *counts* mean 4x lower overhead fraction."""
        h100_overhead = SparePolicy(spares=1).overhead(8)
        lite_overhead = SparePolicy(spares=1).overhead(32)
        assert h100_overhead == 4 * lite_overhead

    def test_spares_for_target_monotone(self):
        spares = spares_for_target(
            2, 8, FAST_FAILING, target_availability=0.99,
            horizon=60 * DAY, seed=2, max_spares=8,
        )
        assert spares is not None
        # The found count achieves the target...
        result = simulate_availability(
            2, 8, FAST_FAILING, SparePolicy(spares=spares), horizon=60 * DAY, seed=2
        )
        assert result.instance_availability >= 0.99

    def test_spares_for_target_validation(self):
        with pytest.raises(SpecError):
            spares_for_target(2, 8, FAST_FAILING, target_availability=1.5)

    def test_lite_fleet_with_scaled_reliability_needs_few_spares(self):
        """Area-scaled Lite GPUs fail 4x less often, so a Lite fleet
        matches the H100 fleet's availability with the same *silicon*
        spent on spares (8 Lite spares = 2 H100 spares) — and each Lite
        spare is 4x cheaper, which is the paper's overhead argument."""
        lite_model = scaled_lite_failure_model(FAST_FAILING, 4)
        lite = simulate_availability(
            4, 32, lite_model, SparePolicy(spares=8), horizon=60 * DAY, seed=4
        )
        h100 = simulate_availability(
            4, 8, FAST_FAILING, SparePolicy(spares=2), horizon=60 * DAY, seed=4
        )
        assert lite.instance_availability > 0.98
        assert lite.instance_availability >= h100.instance_availability - 0.02
