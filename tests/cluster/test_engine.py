"""Engine-core tests: event queue ordering and memoized service times."""

from __future__ import annotations

import pytest

from repro.cluster.engine import EventQueue, ServiceTimeProvider
from repro.cluster.scheduler import InstanceSpec
from repro.errors import SpecError
from repro.hardware.gpu import H100
from repro.workloads.models import LLAMA3_8B


def instance() -> InstanceSpec:
    return InstanceSpec(LLAMA3_8B, H100, 1)


class TestEventQueue:
    def test_time_ordering(self):
        q = EventQueue()
        q.push(3.0, "c")
        q.push(1.0, "a")
        q.push(2.0, "b")
        assert [q.pop()[1] for _ in range(3)] == ["a", "b", "c"]

    def test_fifo_tie_breaking(self):
        q = EventQueue()
        for kind in ("first", "second", "third"):
            q.push(1.0, kind)
        assert [q.pop()[1] for _ in range(3)] == ["first", "second", "third"]

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q and len(q) == 0
        q.push(0.0, "x", (1, 2))
        assert q and len(q) == 1
        assert q.pop() == (0.0, "x", (1, 2))


class TestServiceTimeProvider:
    def test_exact_bucket_matches_direct_evaluation(self):
        spec = instance()
        provider = ServiceTimeProvider(spec, context_bucket=1)
        assert provider.decode_time(8, 777) == spec.decode_time(8, 777)
        assert provider.prefill_time(2, 1500) == spec.prefill_time(2, 1500)

    def test_cache_hits_on_repeat(self):
        provider = ServiceTimeProvider(instance(), context_bucket=1)
        first = provider.decode_time(4, 100)
        second = provider.decode_time(4, 100)
        assert first == second
        info = provider.cache_info()
        assert info["hits"] == 1 and info["misses"] == 1 and info["entries"] == 1

    def test_bucket_rounds_context_up(self):
        spec = instance()
        provider = ServiceTimeProvider(spec, context_bucket=64)
        # 100 and 128 land in the same bucket (128); 129 does not.
        assert provider.decode_time(4, 100) == spec.decode_time(4, 128)
        assert provider.decode_time(4, 128) == provider.decode_time(4, 100)
        assert provider.decode_time(4, 129) == spec.decode_time(4, 192)
        assert provider.cache_info()["entries"] == 2

    def test_bucketed_latency_is_conservative(self):
        spec = instance()
        provider = ServiceTimeProvider(spec, context_bucket=256)
        assert provider.decode_time(4, 100) >= spec.decode_time(4, 100)

    def test_cache_disabled_still_correct(self):
        spec = instance()
        provider = ServiceTimeProvider(spec, cache=False)
        assert provider.decode_time(4, 100) == spec.decode_time(4, 100)
        provider.decode_time(4, 100)
        info = provider.cache_info()
        assert info["hits"] == 0 and info["misses"] == 2 and info["entries"] == 0

    def test_mixed_time_cached(self):
        provider = ServiceTimeProvider(instance(), context_bucket=1)
        a = provider.mixed_time(8, 500, 256, 1500)
        b = provider.mixed_time(8, 500, 256, 1500)
        assert a == b > 0
        assert provider.cache_info()["hits"] == 1

    def test_invalid_bucket(self):
        with pytest.raises(SpecError):
            ServiceTimeProvider(instance(), context_bucket=0)
