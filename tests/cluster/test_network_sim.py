"""Topology co-simulation: placement-aware service times + component faults.

The acceptance contract of the placement layer:

- ``network_model="none"`` is invisible — reports are identical to a run
  with no topology at all (the golden-pinned baseline);
- ``network_model="fabric"`` makes scattered placements strictly worse than
  packed ones on the same trace;
- a component-level failure (link, switch, rack) resolves through the
  placement to the right instances, and the serving report's restart
  counters reflect the lost work.
"""

from __future__ import annotations

import pytest

from repro.cluster.engine import NetworkAwareServiceTimeProvider, ServiceTimeProvider
from repro.cluster.failures import ComponentFailure, ComponentFailureModel, FailureModel
from repro.cluster.placement import Placement, PoolShape, place
from repro.cluster.scheduler import ColocatedPool, InstanceSpec, PhasePools
from repro.cluster.simulator import ColocatedSimulator, ServingSimulator, SimConfig
from repro.errors import SpecError
from repro.hardware.gpu import H100, LITE_MEMBW, LITE_NETBW_FLOPS
from repro.network.topology import DirectConnectTopology, SwitchedTopology
from repro.workloads.models import LLAMA3_8B, LLAMA3_70B
from repro.workloads.traces import TraceConfig, generate_trace

TRACE = generate_trace(
    TraceConfig(rate=4.0, duration=20.0, output_tokens=80, output_spread=0.5), seed=9
)


def _lite_pools() -> PhasePools:
    return PhasePools(
        prefill=InstanceSpec(LLAMA3_70B, LITE_NETBW_FLOPS, 8),
        n_prefill=2,
        decode=InstanceSpec(LLAMA3_70B, LITE_MEMBW, 8),
        n_decode=2,
        max_prefill_batch=4,
        max_decode_batch=256,
    )


def _topo() -> DirectConnectTopology:
    return DirectConnectTopology(n_gpus=32, group=8)


class TestNetworkModelNone:
    def test_none_with_topology_is_bit_identical_to_baseline(self):
        config = SimConfig(max_sim_time=300.0)
        baseline = ServingSimulator(_lite_pools(), config).run(TRACE)
        with_topo = ServingSimulator(
            _lite_pools(), config, topology=_topo(), network_model="none"
        ).run(TRACE)
        assert baseline == with_topo

    def test_placement_still_materializes(self):
        sim = ServingSimulator(_lite_pools(), topology=_topo())
        assert sim.placement is not None
        assert sim.placement.pools == ("prefill", "decode")
        assert isinstance(sim.prefill_provider, ServiceTimeProvider)
        assert not isinstance(sim.prefill_provider, NetworkAwareServiceTimeProvider)

    def test_no_topology_means_no_placement(self):
        sim = ServingSimulator(_lite_pools())
        assert sim.placement is None and sim.topology is None


class TestFabricModel:
    def test_scattered_strictly_worse_than_packed(self):
        config = SimConfig(max_sim_time=300.0)
        packed = ServingSimulator(
            _lite_pools(), config, topology=_topo(), placer="packed",
            network_model="fabric",
        ).run(TRACE)
        scattered = ServingSimulator(
            _lite_pools(), config, topology=_topo(), placer="scattered",
            network_model="fabric",
        ).run(TRACE)
        assert scattered.tbt_mean > packed.tbt_mean
        assert scattered.e2e_p50 > packed.e2e_p50
        assert scattered.output_tokens_per_s < packed.output_tokens_per_s

    def test_fabric_is_slower_than_none(self):
        config = SimConfig(max_sim_time=300.0)
        none = ServingSimulator(_lite_pools(), config, topology=_topo()).run(TRACE)
        fabric = ServingSimulator(
            _lite_pools(), config, topology=_topo(), network_model="fabric"
        ).run(TRACE)
        assert fabric.tbt_mean > none.tbt_mean

    def test_single_gpu_instances_pay_nothing(self):
        pool = ColocatedPool(
            instance=InstanceSpec(LLAMA3_8B, H100, 1), n_instances=2, max_decode_batch=64
        )
        topo = SwitchedTopology(n_gpus=2)
        config = SimConfig(max_sim_time=120.0)
        base = ColocatedSimulator(pool, config).run(TRACE)
        fabric = ColocatedSimulator(
            pool, config, topology=topo, network_model="fabric"
        ).run(TRACE)
        assert base == fabric  # world-1 groups issue no collectives

    def test_provider_fabric_info(self):
        sim = ServingSimulator(
            _lite_pools(), topology=_topo(), placer="scattered", network_model="fabric"
        )
        info = sim.decode_provider.fabric_info()
        assert len(info) == 2
        assert all(entry["world"] == 8 for entry in info)
        assert all(entry["max_hops"] >= 2 for entry in info)
        assert all(entry["contention"] >= 1.0 for entry in info)

    def test_explicit_placement_accepted(self):
        topo = _topo()
        placement = place(
            topo,
            [PoolShape("prefill", 2, 8), PoolShape("decode", 2, 8)],
            placer="greedy",
        )
        sim = ServingSimulator(
            _lite_pools(), topology=topo, placer=placement, network_model="fabric"
        )
        assert sim.placement is placement
        report = sim.run(TRACE)
        assert report.completed == len(TRACE)


class TestValidation:
    def test_unknown_network_model(self):
        with pytest.raises(SpecError):
            ServingSimulator(_lite_pools(), topology=_topo(), network_model="quantum")

    def test_fabric_requires_topology(self):
        with pytest.raises(SpecError):
            ServingSimulator(_lite_pools(), network_model="fabric")

    def test_component_failures_require_topology(self):
        with pytest.raises(SpecError):
            ServingSimulator(
                _lite_pools(),
                component_failures=[ComponentFailure(1.0, "gpu", 0, 10.0)],
            )

    def test_placement_must_match_deployment(self):
        topo = _topo()
        wrong = Placement(32, (("prefill", ((0, 1),)), ("decode", ((2, 3),))))
        with pytest.raises(SpecError):
            ServingSimulator(_lite_pools(), topology=topo, placer=wrong)

    def test_placement_must_match_topology_size(self):
        placement = place(
            DirectConnectTopology(n_gpus=64, group=8),
            [PoolShape("prefill", 2, 8), PoolShape("decode", 2, 8)],
        )
        with pytest.raises(SpecError):
            ServingSimulator(_lite_pools(), topology=_topo(), placer=placement)

    def test_cluster_too_small_for_deployment(self):
        with pytest.raises(SpecError):
            ServingSimulator(
                _lite_pools(), topology=DirectConnectTopology(n_gpus=16, group=8)
            )


class TestComponentFailuresEndToEnd:
    def test_rack_failure_downs_decode_instance_and_restarts_requests(self):
        """A rack power event on decode GPUs must surface as restarts."""
        config = SimConfig(max_sim_time=300.0)
        # Packed placement: prefill on GPUs 0..15, decode on 16..31.
        # Rack 2 (GPUs 16..23) is decode instance 0.
        event = ComponentFailure(2.0, "rack", 2, 60.0)
        sim = ServingSimulator(
            _lite_pools(), config, topology=_topo(), component_failures=[event]
        )
        assert (2.0, "decode", 0, 60.0) in sim.failures
        assert all(pool != "prefill" for _, pool, _, _ in sim.failures)
        report = sim.run(TRACE)
        assert report.requeued_on_failure > 0
        assert report.restarted_requests > 0

    def test_switch_failure_blast_radius_hits_all_instances(self):
        """The direct topology's hub touches one GPU per group: every
        instance of both pools goes down at the event time."""
        event = ComponentFailure(8.0, "switch", 0, 30.0)
        sim = ServingSimulator(
            _lite_pools(), topology=_topo(), component_failures=[event]
        )
        assert sorted(sim.failures) == [
            (8.0, "decode", 0, 30.0),
            (8.0, "decode", 1, 30.0),
            (8.0, "prefill", 0, 30.0),
            (8.0, "prefill", 1, 30.0),
        ]

    def test_link_failure_scripted_equivalence(self):
        """A mesh-link event is exactly an instance-level outage of the one
        instance whose group owns the link — reports must match."""
        topo = _topo()
        config = SimConfig(max_sim_time=300.0)
        from repro.cluster.failures import link_inventory

        links = link_inventory(topo)
        # A mesh link inside group 3 (GPUs 24..31) = decode instance 1.
        mesh = next(
            i for i, e in enumerate(links)
            if e[0][0] == "gpu" and e[1][0] == "gpu" and 24 <= e[0][1] <= 31
        )
        via_component = ServingSimulator(
            _lite_pools(), config, topology=topo,
            component_failures=[ComponentFailure(10.0, "link", mesh, 45.0)],
        ).run(TRACE)
        via_instance = ServingSimulator(
            _lite_pools(), config, failures=[(10.0, "decode", 1, 45.0)]
        ).run(TRACE)
        assert via_component == via_instance

    def test_component_model_sampling_is_deterministic_and_placement_seeded(self):
        config = SimConfig(max_sim_time=600.0)
        model = ComponentFailureModel(
            link=FailureModel(mtbf=150.0, mttr=20.0),
            switch=FailureModel(mtbf=300.0, mttr=30.0),
        )
        a = ServingSimulator(
            _lite_pools(), config, topology=_topo(), component_model=model
        )
        b = ServingSimulator(
            _lite_pools(), config, topology=_topo(), component_model=model
        )
        assert a.failures == b.failures
        # A different placement draws a different (derived-seed) schedule.
        c = ServingSimulator(
            _lite_pools(), config, topology=_topo(), component_model=model,
            placer="scattered",
        )
        assert a.failures != c.failures

    def test_colocated_component_failures(self):
        pool = ColocatedPool(
            instance=InstanceSpec(LLAMA3_8B, H100, 1), n_instances=4, max_decode_batch=64
        )
        topo = SwitchedTopology(n_gpus=4)
        sim = ColocatedSimulator(
            pool, SimConfig(max_sim_time=300.0), topology=topo,
            component_failures=[ComponentFailure(3.0, "gpu", 2, 25.0)],
        )
        assert sim.failures == [(3.0, "colocated", 2, 25.0)]
        report = sim.run(TRACE)
        assert report.completed == len(TRACE)
