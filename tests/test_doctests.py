"""Run every module's doctests — the documented examples must stay true."""

from __future__ import annotations

import doctest
import importlib
import pkgutil

import pytest

import repro


def _all_modules():
    names = []
    for modinfo in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if modinfo.name.endswith("__main__"):
            continue  # executing it runs the CLI
        names.append(modinfo.name)
    return sorted(names)


@pytest.mark.parametrize("module_name", _all_modules())
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, f"{result.failed} doctest failures in {module_name}"


def test_doctest_coverage_nontrivial():
    """The library documents itself: a healthy number of runnable examples."""
    attempted = 0
    for name in _all_modules():
        module = importlib.import_module(name)
        attempted += doctest.testmod(module, verbose=False).attempted
    assert attempted >= 60
