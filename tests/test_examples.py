"""Every script under ``examples/`` must run — examples cannot silently rot.

Each example is executed in a subprocess with ``REPRO_EXAMPLE_TINY=1``, the
shared env knob that shrinks traces/horizons so the whole sweep stays fast.
A new example is picked up automatically by the glob; an example that
raises, exits non-zero, or prints nothing fails CI.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = sorted((ROOT / "examples").glob("*.py"))


def test_examples_discovered():
    assert len(EXAMPLES) >= 11  # the known set; new examples only add to it


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(path: Path):
    env = dict(os.environ)
    env["REPRO_EXAMPLE_TINY"] = "1"
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, str(path)],
        cwd=ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert proc.returncode == 0, (
        f"{path.name} exited {proc.returncode}\n"
        f"stdout:\n{proc.stdout[-2000:]}\nstderr:\n{proc.stderr[-2000:]}"
    )
    assert proc.stdout.strip(), f"{path.name} printed nothing"
