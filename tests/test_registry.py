"""Registry and exception-hierarchy tests."""

from __future__ import annotations

import pytest

from repro._registry import Registry
from repro.errors import (
    AllocationError,
    InfeasibleError,
    LiteGPUError,
    RegistryError,
    SimulationError,
    SpecError,
)


class TestRegistry:
    def test_register_and_get(self):
        reg: Registry[int] = Registry("thing")
        reg.register("Foo-Bar", 42)
        assert reg.get("foo_bar") == 42
        assert reg.get("FOO BAR") == 42

    def test_duplicate_rejected(self):
        reg: Registry[int] = Registry("thing")
        reg.register("x", 1)
        with pytest.raises(RegistryError):
            reg.register("X", 2)

    def test_overwrite_allowed_when_requested(self):
        reg: Registry[int] = Registry("thing")
        reg.register("x", 1)
        reg.register("x", 2, overwrite=True)
        assert reg.get("x") == 2

    def test_unknown_lists_known_names(self):
        reg: Registry[int] = Registry("widget")
        reg.register("alpha", 1)
        with pytest.raises(RegistryError, match="alpha"):
            reg.get("beta")

    def test_contains_iter_len_names(self):
        reg: Registry[int] = Registry("thing")
        reg.register("a", 1)
        reg.register("b", 2)
        assert "a" in reg and "c" not in reg
        assert list(reg) == [1, 2]
        assert len(reg) == 2
        assert reg.names() == ["a", "b"]


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc", [SpecError, InfeasibleError, AllocationError, SimulationError, RegistryError]
    )
    def test_all_derive_from_base(self, exc):
        assert issubclass(exc, LiteGPUError)

    def test_spec_error_is_value_error(self):
        assert issubclass(SpecError, ValueError)

    def test_registry_error_is_key_error(self):
        assert issubclass(RegistryError, KeyError)
