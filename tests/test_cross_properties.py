"""Cross-module property tests: invariants that tie the library together.

These complement the per-module hypothesis tests with end-to-end invariants
the whole model rests on — resource monotonicity, conservation, and
normalization consistency.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.inference import DecodeWorkload, PrefillWorkload, decode_iteration, prefill_pass
from repro.core.roofline import RooflinePolicy
from repro.core.training import TrainingConfig, train_step
from repro.hardware.gpu import GPUSpec, H100, LITE
from repro.hardware.scaling import LiteScaling, derive_lite_gpu
from repro.hardware.tco import TCOAssumptions, cluster_tco
from repro.cluster.spec import ClusterSpec
from repro.network.traffic import TrafficPattern, traffic_matrix
from repro.workloads.models import LLAMA3_8B, LLAMA3_70B


def _boosted(gpu: GPUSpec, mem: float = 1.0, net: float = 1.0, flops: float = 1.0) -> GPUSpec:
    """A GPU with scaled resources (keeps everything else fixed)."""
    from dataclasses import replace

    return replace(
        gpu,
        name=f"{gpu.name}*",
        mem_bandwidth=gpu.mem_bandwidth * mem,
        net_bandwidth=gpu.net_bandwidth * net,
        mesh_bandwidth=gpu.mesh_bandwidth * net,
        peak_flops=gpu.peak_flops * flops,
    )


class TestResourceMonotonicity:
    """More of any resource never slows any phase down."""

    @given(
        batch=st.sampled_from([1, 8, 64]),
        resource=st.sampled_from(["mem", "net", "flops"]),
        factor=st.floats(1.1, 3.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_decode_latency_monotone_in_resources(self, batch, resource, factor):
        boosted = _boosted(LITE, **{resource: factor})
        base = decode_iteration(LLAMA3_70B, LITE, 8, DecodeWorkload(batch))
        fast = decode_iteration(LLAMA3_70B, boosted, 8, DecodeWorkload(batch))
        assert fast.latency <= base.latency + 1e-12

    @given(
        batch=st.sampled_from([1, 4]),
        factor=st.floats(1.1, 2.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_prefill_latency_monotone_in_flops(self, batch, factor):
        boosted = _boosted(H100, flops=factor)
        base = prefill_pass(LLAMA3_70B, H100, 8, PrefillWorkload(batch))
        fast = prefill_pass(LLAMA3_70B, boosted, 8, PrefillWorkload(batch))
        assert fast.latency <= base.latency + 1e-12


class TestConservationUnderSplit:
    """Splitting a GPU conserves every aggregate the economics rest on."""

    @given(split=st.sampled_from([2, 4, 8]))
    @settings(max_examples=10, deadline=None)
    def test_cluster_aggregates_conserved(self, split):
        base = ClusterSpec(H100, 8)
        lite_gpu = derive_lite_gpu(H100, LiteScaling(split=split), validate_shoreline=False)
        lite = ClusterSpec(lite_gpu, 8 * split)
        assert lite.total_flops == pytest.approx(base.total_flops)
        assert lite.total_mem_capacity == pytest.approx(base.total_mem_capacity)
        assert lite.gpu_power == pytest.approx(base.gpu_power)


class TestTrafficConservation:
    @given(
        pattern=st.sampled_from(list(TrafficPattern)),
        total=st.floats(1e6, 1e12),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=40, deadline=None)
    def test_matrices_conserve_bytes(self, pattern, total, seed):
        m = traffic_matrix(pattern, 16, total, group=4, seed=seed)
        assert m.sum() == pytest.approx(total, rel=1e-9)
        assert (m >= 0).all()


class TestTrainingInvariants:
    @given(dp=st.sampled_from([2, 4, 8]), tp=st.sampled_from([2, 4, 8]))
    @settings(max_examples=15, deadline=None)
    def test_mfu_bounded(self, dp, tp):
        cfg = TrainingConfig(data_parallel=dp, tensor=tp, micro_batch=1)
        result = train_step(LLAMA3_8B, H100, cfg)
        assert 0.0 < result.mfu < 1.0

    @given(seq=st.sampled_from([1024, 2048, 4096, 8192]))
    @settings(max_examples=10, deadline=None)
    def test_tokens_per_step_consistent(self, seq):
        cfg = TrainingConfig(data_parallel=4, tensor=4, micro_batch=1, seq_len=seq)
        result = train_step(LLAMA3_8B, H100, cfg)
        assert result.tokens_per_s == pytest.approx(cfg.tokens_per_step / result.step_time)


class TestTCOInvariants:
    @given(
        price=st.floats(0.03, 0.30),
        pue=st.floats(1.05, 2.0),
        years=st.floats(2.0, 8.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_tco_positive_and_decomposes(self, price, pue, years):
        assumptions = TCOAssumptions(
            electricity_usd_per_kwh=price, pue=pue, amortization_years=years
        )
        bd = cluster_tco(ClusterSpec(H100, 8), assumptions)
        assert bd.total_per_hour == pytest.approx(bd.capex_per_hour + bd.opex_per_hour)
        assert bd.total_per_hour > 0

    @given(pue=st.floats(1.05, 1.9))
    @settings(max_examples=15, deadline=None)
    def test_power_scales_with_pue(self, pue):
        base = cluster_tco(ClusterSpec(H100, 8), TCOAssumptions(pue=1.0 + 1e-9))
        worse = cluster_tco(ClusterSpec(H100, 8), TCOAssumptions(pue=pue))
        assert worse.power_opex >= base.power_opex


class TestNormalizationConsistency:
    def test_per_sm_metric_silicon_invariant(self):
        """Two layouts with identical per-SM resources and no network
        difference score identically: 1x H100 vs itself at doubled count
        and halved batch share."""
        one = decode_iteration(LLAMA3_8B, H100, 1, DecodeWorkload(32))
        # Same aggregate on 2 GPUs with TP=2 incurs only collective overhead:
        two = decode_iteration(LLAMA3_8B, H100, 2, DecodeWorkload(32))
        assert two.tokens_per_s_per_sm <= one.tokens_per_s_per_sm * 1.05
