"""Unit-constant and formatting tests."""

from __future__ import annotations

import pytest

from repro import units


class TestConstants:
    def test_time_ladder(self):
        assert units.US == pytest.approx(1000 * units.NS)
        assert units.MS == pytest.approx(1000 * units.US)
        assert units.SECOND == pytest.approx(1000 * units.MS)
        assert units.HOUR == 60 * units.MINUTE
        assert units.DAY == 24 * units.HOUR

    def test_data_ladder_decimal(self):
        assert units.GB == 1000 * units.MB
        assert units.TB == 1000 * units.GB
        assert units.PB == 1000 * units.TB

    def test_data_ladder_binary(self):
        assert units.GIB == 1024 * units.MIB
        assert units.GIB > units.GB

    def test_rate_bits_vs_bytes(self):
        assert units.GBIT_PER_S * 8 == units.GB_PER_S
        assert units.PBIT_PER_S == 1000 * units.TBIT_PER_S

    def test_compute_ladder(self):
        assert units.TFLOPS == 1000 * units.GFLOPS
        assert units.PFLOPS == 1000 * units.TFLOPS


class TestConversions:
    def test_to_unit(self):
        assert units.to_unit(2e12, units.TFLOPS) == 2.0

    def test_from_unit_roundtrip(self):
        assert units.from_unit(units.to_unit(3.5e9, units.GB), units.GB) == 3.5e9


class TestFormatting:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (3.35e12, "3.35 TB"),
            (2e9, "2.00 GB"),
            (1.5e6, "1.50 MB"),
            (999.0, "999 B"),
        ],
    )
    def test_fmt_bytes(self, value, expected):
        assert units.fmt_bytes(value) == expected

    def test_fmt_rate(self):
        assert units.fmt_rate(4.5e11) == "450.00 GB/s"

    def test_fmt_flops(self):
        assert units.fmt_flops(2e15) == "2.00 PFLOPS"
        assert units.fmt_flops(5e11) == "500.00 GFLOPS"

    @pytest.mark.parametrize(
        "value,expected",
        [(2.5, "2.50 s"), (0.0021, "2.10 ms"), (3.2e-6, "3.20 us"), (5e-9, "5.00 ns")],
    )
    def test_fmt_time(self, value, expected):
        assert units.fmt_time(value) == expected
