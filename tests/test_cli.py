"""CLI smoke tests."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_registered(self):
        parser = build_parser()
        for command in ("table1", "fig1", "fig2", "fig3a", "fig3b", "report",
                        "search", "tco", "simulate"):
            args = parser.parse_args([command])
            assert callable(args.fn)


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "H100" in out and "Lite+MemBW" in out

    def test_fig2(self, capsys):
        assert main(["fig2"]) == 0
        assert "yield" in capsys.readouterr().out

    def test_fig3b(self, capsys):
        assert main(["fig3b"]) == 0
        out = capsys.readouterr().out
        assert "Llama3-405B" in out

    def test_search_verbose(self, capsys):
        assert main(["search", "--model", "Llama3-8B", "--gpu", "H100",
                     "--phase", "decode", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "tok/s/SM" in out
        assert "bound by" in out

    def test_tco(self, capsys):
        assert main(["tco", "--model", "Llama3-8B"]) == 0
        out = capsys.readouterr().out
        assert "/Mtok" in out and "saving" in out

    def test_simulate_phase_split(self, capsys):
        assert main([
            "simulate", "--model", "Llama3-8B", "--prefill-gpu", "H100",
            "--decode-gpu", "H100", "--gpus-per-instance", "1",
            "--n-prefill", "1", "--n-decode", "1", "--max-decode-batch", "64",
            "--rate", "2", "--duration", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "phase-split" in out and "completed" in out and "TTFT" in out

    def test_simulate_colocated_with_failures(self, capsys):
        assert main([
            "simulate", "--shape", "colocated", "--model", "Llama3-8B",
            "--gpu", "H100", "--gpus-per-instance", "1", "--n-instances", "2",
            "--max-decode-batch", "64", "--rate", "2", "--duration", "5",
            "--policy", "least-loaded", "--mtbf-hours", "0.01",
            "--mttr-hours", "0.005", "--max-sim-time", "60",
        ]) == 0
        out = capsys.readouterr().out
        assert "colocated" in out and "stochastic failures" in out

    def test_simulate_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--policy", "nope"])

    def test_bad_spec_reports_clean_error(self, capsys):
        assert main(["simulate", "--context-bucket", "0"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "context_bucket" in err
