"""CLI smoke tests."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_registered(self):
        parser = build_parser()
        for command in ("table1", "fig1", "fig2", "fig3a", "fig3b", "report", "search", "tco"):
            args = parser.parse_args([command] if command not in ("search", "tco") else [command])
            assert callable(args.fn)


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "H100" in out and "Lite+MemBW" in out

    def test_fig2(self, capsys):
        assert main(["fig2"]) == 0
        assert "yield" in capsys.readouterr().out

    def test_fig3b(self, capsys):
        assert main(["fig3b"]) == 0
        out = capsys.readouterr().out
        assert "Llama3-405B" in out

    def test_search_verbose(self, capsys):
        assert main(["search", "--model", "Llama3-8B", "--gpu", "H100",
                     "--phase", "decode", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "tok/s/SM" in out
        assert "bound by" in out

    def test_tco(self, capsys):
        assert main(["tco", "--model", "Llama3-8B"]) == 0
        out = capsys.readouterr().out
        assert "/Mtok" in out and "saving" in out
