"""CLI smoke tests."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_registered(self):
        parser = build_parser()
        for command in ("table1", "fig1", "fig2", "fig3a", "fig3b", "report",
                        "search", "tco", "simulate", "sweep", "screen",
                        "topology", "autoscale"):
            args = parser.parse_args([command])
            assert callable(args.fn)
        # `cache` needs its positional action.
        assert callable(parser.parse_args(["cache", "stats"]).fn)


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "H100" in out and "Lite+MemBW" in out

    def test_fig2(self, capsys):
        assert main(["fig2"]) == 0
        assert "yield" in capsys.readouterr().out

    def test_fig3b(self, capsys):
        assert main(["fig3b"]) == 0
        out = capsys.readouterr().out
        assert "Llama3-405B" in out

    def test_search_verbose(self, capsys):
        assert main(["search", "--model", "Llama3-8B", "--gpu", "H100",
                     "--phase", "decode", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "tok/s/SM" in out
        assert "bound by" in out

    def test_tco(self, capsys):
        assert main(["tco", "--model", "Llama3-8B"]) == 0
        out = capsys.readouterr().out
        assert "/Mtok" in out and "saving" in out

    def test_simulate_phase_split(self, capsys):
        assert main([
            "simulate", "--model", "Llama3-8B", "--prefill-gpu", "H100",
            "--decode-gpu", "H100", "--gpus-per-instance", "1",
            "--n-prefill", "1", "--n-decode", "1", "--max-decode-batch", "64",
            "--rate", "2", "--duration", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "phase-split" in out and "completed" in out and "TTFT" in out

    def test_simulate_colocated_with_failures(self, capsys):
        assert main([
            "simulate", "--shape", "colocated", "--model", "Llama3-8B",
            "--gpu", "H100", "--gpus-per-instance", "1", "--n-instances", "2",
            "--max-decode-batch", "64", "--rate", "2", "--duration", "5",
            "--policy", "least-loaded", "--mtbf-hours", "0.01",
            "--mttr-hours", "0.005", "--max-sim-time", "60",
        ]) == 0
        out = capsys.readouterr().out
        assert "colocated" in out and "stochastic failures" in out

    def test_simulate_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--policy", "nope"])

    def test_bad_spec_reports_clean_error(self, capsys):
        assert main(["simulate", "--context-bucket", "0"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "context_bucket" in err


class TestSweepCommand:
    def _argv(self, tmp_path, *extra):
        return [
            "sweep", "--model", "Llama3-8B", "--gpu", "H100",
            "--rates", "2,3", "--sizes", "1", "--duration", "4",
            "--cache-dir", str(tmp_path / "cache"), *extra,
        ]

    def test_sweep_runs_grid_and_renders_table(self, capsys, tmp_path):
        assert main(self._argv(tmp_path)) == 0
        out = capsys.readouterr().out
        assert "Sweep grid" in out
        assert "rate=2 size=1" in out and "rate=3 size=1" in out
        assert "best throughput:" in out
        assert "0 hits" in out and "2 stored" in out

    def test_second_invocation_hits_cache(self, capsys, tmp_path):
        assert main(self._argv(tmp_path)) == 0
        first = capsys.readouterr().out
        assert main(self._argv(tmp_path)) == 0
        second = capsys.readouterr().out
        assert "2 hits" in second and "[cached]" in second
        # Warm results are bit-identical: the rendered rows must not change.
        table_rows = [line.replace(" [cached]", "") for line in second.splitlines()
                      if line.startswith("rate=")]
        assert table_rows == [line for line in first.splitlines() if line.startswith("rate=")]

    def test_no_cache_flag(self, capsys, tmp_path):
        assert main(self._argv(tmp_path, "--no-cache")) == 0
        out = capsys.readouterr().out
        assert "cache: disabled" in out
        assert not (tmp_path / "cache").exists()

    def test_parallel_workers(self, capsys, tmp_path):
        assert main(self._argv(tmp_path, "--workers", "2", "--no-cache")) == 0
        assert "2 worker(s)" in capsys.readouterr().out

    def test_phase_split_shape(self, capsys, tmp_path):
        assert main(self._argv(
            tmp_path, "--shape", "phase-split",
            "--prefill-gpu", "H100", "--decode-gpu", "H100",
        )) == 0
        assert "phase-split" in capsys.readouterr().out

    def test_infeasible_grid_reports_clean_error(self, capsys, tmp_path):
        # 405B weights cannot fit one H100: every point errors, exit code 2.
        assert main([
            "sweep", "--model", "Llama3-405B", "--gpu", "H100",
            "--rates", "2", "--sizes", "1", "--duration", "4",
            "--cache-dir", str(tmp_path / "cache"),
        ]) == 2
        captured = capsys.readouterr()
        assert "ERROR" in captured.out  # the per-point error line
        assert "no sweep point completed successfully" in captured.err

    def test_fluid_backend_sweep(self, capsys, tmp_path):
        assert main(self._argv(tmp_path, "--backend", "fluid", "--no-cache")) == 0
        assert "backend" in capsys.readouterr().out  # provenance column

    def test_fluid_backend_misses_event_cache(self, capsys, tmp_path):
        assert main(self._argv(tmp_path)) == 0
        capsys.readouterr()
        assert main(self._argv(tmp_path, "--backend", "fluid")) == 0
        assert "0 hits" in capsys.readouterr().out


class TestFluidBackendCommand:
    def test_simulate_fluid(self, capsys):
        assert main([
            "simulate", "--model", "Llama3-8B", "--prefill-gpu", "H100",
            "--decode-gpu", "H100", "--gpus-per-instance", "1",
            "--n-prefill", "1", "--n-decode", "1", "--max-decode-batch", "64",
            "--rate", "2", "--duration", "5", "--backend", "fluid",
        ]) == 0
        out = capsys.readouterr().out
        assert "fluid" in out and "completed" in out

    def test_fluid_rejects_shards(self, capsys):
        assert main([
            "simulate", "--backend", "fluid", "--shards", "2",
            "--rate", "2", "--duration", "5",
        ]) == 2
        assert "--shards" in capsys.readouterr().err

    def test_fluid_rejects_failures(self, capsys):
        assert main([
            "simulate", "--model", "Llama3-8B", "--prefill-gpu", "H100",
            "--decode-gpu", "H100", "--gpus-per-instance", "1",
            "--backend", "fluid", "--mtbf-hours", "0.5",
            "--rate", "2", "--duration", "5",
        ]) == 2
        assert "fluid" in capsys.readouterr().err


class TestScreenCommand:
    def test_screen_prints_two_tier_table_and_verdict(self, capsys, tmp_path):
        assert main([
            "screen", "--model", "Llama3-8B", "--gpu", "H100",
            "--rates", "2,4", "--sizes", "1,2", "--duration", "4",
            "--cache-dir", str(tmp_path / "cache"),
        ]) == 0
        out = capsys.readouterr().out
        assert "two-tier screen" in out
        assert "best (event-verified):" in out
        assert "points promoted" in out

    def test_screen_no_cache(self, capsys, tmp_path):
        assert main([
            "screen", "--model", "Llama3-8B", "--gpu", "H100",
            "--rates", "2", "--sizes", "1", "--duration", "4", "--no-cache",
        ]) == 0
        assert "best (event-verified):" in capsys.readouterr().out
        assert not (tmp_path / "cache").exists()


class TestTopologyCommand:
    def test_prints_three_fabrics(self, capsys):
        assert main(["topology", "--gpus", "32", "--group", "4"]) == 0
        out = capsys.readouterr().out
        assert "Fabric comparison: 32 GPUs, group 4" in out
        for name in ("direct-connect", "packet-switched", "flat-circuit"):
            assert name in out

    def test_group_must_divide_gpus(self, capsys):
        assert main(["topology", "--gpus", "30", "--group", "4"]) == 2
        assert "error:" in capsys.readouterr().err


class TestTopologyAwareSimulate:
    def _argv(self, *extra):
        return [
            "simulate", "--model", "Llama3-8B", "--gpus-per-instance", "1",
            "--n-prefill", "1", "--n-decode", "1", "--duration", "4",
            "--max-sim-time", "120", *extra,
        ]

    def test_simulate_with_fabric_model(self, capsys):
        assert main(self._argv(
            "--topology", "switched", "--network-model", "fabric",
            "--placer", "packed",
        )) == 0
        out = capsys.readouterr().out
        assert "topology switched" in out and "network model 'fabric'" in out
        assert "intra-instance hops" in out

    def test_simulate_topology_none_prints_no_placement(self, capsys):
        assert main(self._argv()) == 0
        assert "topology" not in capsys.readouterr().out.splitlines()[-1]

    def test_fabric_without_topology_is_an_error(self, capsys):
        assert main(self._argv("--network-model", "fabric")) == 2
        assert "topology is required" in capsys.readouterr().err

    def test_placement_flags_without_topology_are_an_error(self, capsys):
        assert main(self._argv("--placer", "scattered")) == 2
        assert "no effect without --topology" in capsys.readouterr().err


class TestSweepTopologyCacheSeparation:
    """Regression: a topology sweep must not reuse non-network cached points."""

    def _argv(self, tmp_path, *extra):
        return [
            "sweep", "--model", "Llama3-8B", "--gpu", "H100",
            "--rates", "2", "--sizes", "2", "--duration", "4",
            "--cache-dir", str(tmp_path / "cache"), *extra,
        ]

    def test_topology_points_miss_the_legacy_cache(self, capsys, tmp_path):
        assert main(self._argv(tmp_path)) == 0
        first = capsys.readouterr().out
        assert "1 stored" in first
        assert main(self._argv(
            tmp_path, "--topology", "circuit", "--network-model", "fabric",
        )) == 0
        second = capsys.readouterr().out
        assert "0 hits" in second and "[cached]" not in second
        # And the topology point caches under its own key.
        assert main(self._argv(
            tmp_path, "--topology", "circuit", "--network-model", "fabric",
        )) == 0
        assert "1 hits" in capsys.readouterr().out


class TestAutoscaleCommand:
    def _argv(self, *extra):
        return [
            "autoscale", "--rates", "1,8,1", "--segment", "20",
            "--epoch", "4", "--warmup", "8", *extra,
        ]

    def test_compares_controllers_and_prints_verdict(self, capsys):
        assert main(self._argv()) == 0
        out = capsys.readouterr().out
        assert "Static vs elastic provisioning" in out
        assert "$/Mtok" in out and "gpu-s" in out
        assert "static" in out and "reactive" in out and "slo" in out
        assert "cheapest at P99-TTFT" in out

    def test_forecast_controller(self, capsys):
        assert main(self._argv("--controllers", "static,forecast")) == 0
        assert "forecast" in capsys.readouterr().out

    def test_power_cap_requires_cap_window(self, capsys):
        assert main(self._argv("--controllers", "power_cap")) == 2
        assert "--cap" in capsys.readouterr().err

    def test_malformed_cap_is_clean_error(self, capsys):
        assert main(self._argv(
            "--controllers", "power_cap", "--cap", "20:40",
        )) == 2
        assert "start:end:watts" in capsys.readouterr().err

    def test_power_cap_with_window(self, capsys):
        assert main(self._argv(
            "--controllers", "static,power_cap", "--cap", "20:40:2000",
        )) == 0
        assert "power_cap" in capsys.readouterr().out

    def test_unknown_controller_is_clean_error(self, capsys):
        assert main(self._argv("--controllers", "nope")) == 2
        assert "unknown controller" in capsys.readouterr().err

    def test_single_rate_is_an_error(self, capsys):
        assert main(["autoscale", "--rates", "2"]) == 2
        assert "at least two segments" in capsys.readouterr().err


class TestCacheCommand:
    def test_stats_on_empty_cache(self, capsys, tmp_path):
        assert main(["cache", "stats", "--cache-dir", str(tmp_path / "c")]) == 0
        out = capsys.readouterr().out
        assert "0 record(s)" in out and "0 B" in out

    def test_stats_reports_entries_and_size(self, capsys, tmp_path):
        from repro.exec.cache import ResultCache

        cache = ResultCache(tmp_path / "c")
        cache.put(cache.key("demo", 1), {"x": 1})
        cache.put(cache.key("demo", 2), {"y": [1, 2, 3]})
        assert main(["cache", "stats", "--cache-dir", str(tmp_path / "c")]) == 0
        out = capsys.readouterr().out
        assert "2 record(s)" in out
        assert "0 B" not in out  # a real size is reported

    def test_clear_removes_records(self, capsys, tmp_path):
        from repro.exec.cache import ResultCache

        cache = ResultCache(tmp_path / "c")
        cache.put(cache.key("demo", 1), {"x": 1})
        assert main(["cache", "clear", "--cache-dir", str(tmp_path / "c")]) == 0
        assert "cleared 1 record(s)" in capsys.readouterr().out
        assert cache.entries() == 0
