"""Batch-formation policy tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SpecError
from repro.workloads.batching import Batch, ContinuousBatcher, StaticBatcher
from repro.workloads.traces import Request


def make_requests(specs):
    """specs: list of (prompt, output)."""
    return [
        Request(request_id=i, arrival=float(i), prompt_tokens=p, output_tokens=o)
        for i, (p, o) in enumerate(specs)
    ]


class TestBatch:
    def test_prompt_token_totals(self):
        batch = Batch(make_requests([(100, 10), (200, 5)]))
        assert batch.prompt_tokens == 300
        assert batch.max_prompt_tokens == 200
        assert batch.size == 2

    def test_kv_tokens_at_decode_step(self):
        batch = Batch(make_requests([(100, 10), (200, 5)]))
        assert batch.kv_tokens_at(0) == 300
        assert batch.kv_tokens_at(7) == 100 + 7 + 200 + 5
        assert batch.kv_tokens_at(100) == 100 + 10 + 200 + 5

    def test_active_at(self):
        batch = Batch(make_requests([(100, 10), (200, 5)]))
        assert batch.active_at(0) == 2
        assert batch.active_at(5) == 1
        assert batch.active_at(10) == 0

    def test_negative_step_rejected(self):
        with pytest.raises(SpecError):
            Batch(make_requests([(10, 1)])).kv_tokens_at(-1)


class TestStaticBatcher:
    def test_fixed_size_batches(self):
        requests = make_requests([(10, 1)] * 7)
        batches = StaticBatcher(max_batch=3).form(requests)
        assert [b.size for b in batches] == [3, 3, 1]

    def test_preserves_arrival_order(self):
        requests = make_requests([(10, 1)] * 5)
        batches = StaticBatcher(max_batch=2).form(requests)
        flattened = [r.request_id for b in batches for r in b.requests]
        assert flattened == [0, 1, 2, 3, 4]

    def test_token_cap_splits_early(self):
        requests = make_requests([(600, 1), (600, 1), (600, 1)])
        batches = StaticBatcher(max_batch=10, max_tokens=1000).form(requests)
        assert [b.size for b in batches] == [1, 1, 1]

    def test_single_oversized_request_still_batched(self):
        requests = make_requests([(5000, 1)])
        batches = StaticBatcher(max_batch=4, max_tokens=1000).form(requests)
        assert len(batches) == 1 and batches[0].size == 1

    def test_invalid_params(self):
        with pytest.raises(SpecError):
            StaticBatcher(max_batch=0)
        with pytest.raises(SpecError):
            StaticBatcher(max_batch=1, max_tokens=0)

    def test_empty_queue(self):
        assert StaticBatcher(max_batch=4).form([]) == []


class TestContinuousBatcher:
    def test_admission_respects_slots(self):
        batcher = ContinuousBatcher(max_batch=2, kv_token_budget=10_000)
        admitted = batcher.admissible(make_requests([(100, 10)] * 5), 0, 0)
        assert len(admitted) == 2

    def test_admission_respects_kv_budget(self):
        batcher = ContinuousBatcher(max_batch=16, kv_token_budget=250)
        admitted = batcher.admissible(make_requests([(100, 10)] * 5), 0, 0)
        assert len(admitted) == 2  # 110 + 110 <= 250, third would exceed

    def test_admission_accounts_for_occupancy(self):
        batcher = ContinuousBatcher(max_batch=16, kv_token_budget=250)
        admitted = batcher.admissible(make_requests([(100, 10)] * 5), 0, 200)
        assert len(admitted) == 0

    def test_form_wraps_admissible(self):
        batcher = ContinuousBatcher(max_batch=3, kv_token_budget=10_000)
        batches = batcher.form(make_requests([(10, 1)] * 5))
        assert len(batches) == 1 and batches[0].size == 3


class TestProperties:
    @given(
        sizes=st.lists(st.tuples(st.integers(1, 500), st.integers(1, 50)), min_size=1, max_size=40),
        max_batch=st.integers(1, 8),
    )
    @settings(max_examples=40, deadline=None)
    def test_static_batching_partitions_queue(self, sizes, max_batch):
        requests = make_requests(sizes)
        batches = StaticBatcher(max_batch=max_batch).form(requests)
        assert sum(b.size for b in batches) == len(requests)
        assert all(b.size <= max_batch for b in batches)
