"""Model-catalogue tests: the exact geometries the paper evaluates."""

from __future__ import annotations

import pytest

from repro.errors import RegistryError
from repro.workloads.models import (
    GPT3_175B,
    LLAMA3_8B,
    LLAMA3_70B,
    LLAMA3_405B,
    MODELS,
    PAPER_MODELS,
    get_model,
)
from repro.workloads.transformer import AttentionKind, MLPKind


class TestCatalogue:
    def test_paper_models_order(self):
        assert [m.name for m in PAPER_MODELS] == ["Llama3-70B", "GPT3-175B", "Llama3-405B"]

    def test_lookup_is_normalizing(self):
        assert get_model("llama3-70b") is LLAMA3_70B
        assert get_model("GPT3_175B") is GPT3_175B

    def test_unknown_model_raises(self):
        with pytest.raises(RegistryError):
            get_model("gpt5")

    def test_registry_contains_extras(self):
        assert "llama3-8b" in MODELS


class TestLlama70B:
    def test_geometry(self):
        assert LLAMA3_70B.layers == 80
        assert LLAMA3_70B.hidden == 8192
        assert LLAMA3_70B.heads == 64
        assert LLAMA3_70B.kv_heads == 8
        assert LLAMA3_70B.ffn_hidden == 28672

    def test_gqa_and_gated(self):
        assert LLAMA3_70B.attention_kind is AttentionKind.GQA
        assert LLAMA3_70B.mlp_kind is MLPKind.GATED


class TestGPT3:
    def test_geometry(self):
        assert GPT3_175B.layers == 96
        assert GPT3_175B.hidden == 12288
        assert GPT3_175B.heads == 96

    def test_mha_structure(self):
        """GPT-3 is MHA — the paper's 'more KV-heads' observation."""
        assert GPT3_175B.kv_heads == GPT3_175B.heads
        assert GPT3_175B.attention_kind is AttentionKind.MHA

    def test_plain_4h_mlp(self):
        assert GPT3_175B.mlp_kind is MLPKind.PLAIN
        assert GPT3_175B.ffn_hidden == 4 * GPT3_175B.hidden


class TestLlama405B:
    def test_geometry(self):
        assert LLAMA3_405B.layers == 126
        assert LLAMA3_405B.hidden == 16384
        assert LLAMA3_405B.heads == 128
        assert LLAMA3_405B.kv_heads == 8

    def test_needs_multiple_h100s_fp8(self):
        """405 GB of FP8 weights exceed one H100 but fit 8 (DESIGN.md 4.1)."""
        weights = LLAMA3_405B.weight_bytes(1.0)
        assert weights > 80e9
        assert weights < 8 * 80e9


class TestDescribe:
    def test_describe_mentions_params(self, ):
        text = LLAMA3_70B.describe()
        assert "70.6B" in text or "70." in text
        assert "gqa" in text
