"""Synthetic trace generator tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SpecError
from repro.workloads.traces import (
    LengthDistribution,
    Request,
    TraceConfig,
    generate_trace,
    trace_stats,
)


class TestConfigValidation:
    def test_rejects_zero_rate(self):
        with pytest.raises(SpecError):
            TraceConfig(rate=0)

    def test_rejects_max_prompt_below_median(self):
        with pytest.raises(SpecError):
            TraceConfig(prompt_tokens=1000, max_prompt=500)


class TestGeneration:
    def test_deterministic_given_seed(self):
        cfg = TraceConfig(rate=10, duration=20)
        assert generate_trace(cfg, seed=5) == generate_trace(cfg, seed=5)

    def test_different_seeds_differ(self):
        cfg = TraceConfig(rate=10, duration=20)
        assert generate_trace(cfg, seed=1) != generate_trace(cfg, seed=2)

    def test_arrivals_sorted_and_bounded(self):
        trace = generate_trace(TraceConfig(rate=20, duration=10), seed=0)
        arrivals = [r.arrival for r in trace]
        assert arrivals == sorted(arrivals)
        assert all(0 <= a <= 10 for a in arrivals)

    def test_rate_roughly_respected(self):
        trace = generate_trace(TraceConfig(rate=50, duration=100), seed=0)
        assert len(trace) == pytest.approx(5000, rel=0.1)

    def test_constant_prompts_are_paper_default(self):
        trace = generate_trace(TraceConfig(rate=10, duration=10), seed=0)
        assert all(r.prompt_tokens == 1500 for r in trace)

    def test_uniform_arrivals_evenly_spaced(self):
        trace = generate_trace(
            TraceConfig(rate=10, duration=5, poisson_arrivals=False), seed=0
        )
        gaps = np.diff([r.arrival for r in trace])
        assert np.allclose(gaps, 0.1)

    def test_request_ids_sequential(self):
        trace = generate_trace(TraceConfig(rate=5, duration=10), seed=0)
        assert [r.request_id for r in trace] == list(range(len(trace)))


class TestDistributions:
    def test_lognormal_median_near_target(self):
        cfg = TraceConfig(
            rate=100, duration=100,
            output_dist=LengthDistribution.LOGNORMAL, output_tokens=250,
        )
        trace = generate_trace(cfg, seed=0)
        outputs = np.array([r.output_tokens for r in trace])
        assert np.median(outputs) == pytest.approx(250, rel=0.15)

    def test_uniform_prompts_within_band(self):
        cfg = TraceConfig(
            rate=50, duration=20,
            prompt_dist=LengthDistribution.UNIFORM, prompt_tokens=1000, prompt_spread=0.5,
        )
        trace = generate_trace(cfg, seed=0)
        prompts = [r.prompt_tokens for r in trace]
        assert min(prompts) >= 500
        assert max(prompts) <= 1500

    def test_outputs_clamped_to_max(self):
        cfg = TraceConfig(rate=50, duration=20, output_spread=3.0, max_output=300)
        trace = generate_trace(cfg, seed=0)
        assert all(1 <= r.output_tokens <= 300 for r in trace)


class TestStats:
    def test_empty_trace(self):
        assert trace_stats([]) == {"requests": 0}

    def test_stats_fields(self):
        trace = generate_trace(TraceConfig(rate=10, duration=30), seed=0)
        stats = trace_stats(trace)
        assert stats["requests"] == len(trace)
        assert stats["prompt_p50"] == 1500
        assert stats["total_prompt_tokens"] == 1500 * len(trace)

    def test_total_tokens_property(self):
        r = Request(request_id=0, arrival=0.0, prompt_tokens=100, output_tokens=50)
        assert r.total_tokens == 150


class TestProperties:
    @given(rate=st.floats(0.5, 100), duration=st.floats(1, 50), seed=st.integers(0, 99))
    @settings(max_examples=25, deadline=None)
    def test_all_lengths_positive(self, rate, duration, seed):
        trace = generate_trace(TraceConfig(rate=rate, duration=duration), seed=seed)
        assert all(r.prompt_tokens >= 1 and r.output_tokens >= 1 for r in trace)


class TestPiecewiseTrace:
    def test_segments_concatenate_in_time(self):
        from repro.workloads.traces import generate_piecewise_trace

        trace = generate_piecewise_trace([(2.0, 10.0), (8.0, 10.0)], seed=1)
        assert all(r.arrival <= 20.0 for r in trace)
        first = [r for r in trace if r.arrival <= 10.0]
        second = [r for r in trace if r.arrival > 10.0]
        assert len(second) > 2 * len(first)  # the burst is visibly denser
        # Fresh contiguous ids, arrival-ordered (simulator requirements).
        assert [r.request_id for r in trace] == list(range(len(trace)))
        assert all(a.arrival <= b.arrival for a, b in zip(trace, trace[1:]))

    def test_base_config_shapes_are_inherited(self):
        from repro.workloads.traces import TraceConfig, generate_piecewise_trace

        base = TraceConfig(prompt_tokens=700, output_tokens=50)
        trace = generate_piecewise_trace([(2.0, 5.0), (2.0, 5.0)], base, seed=0)
        assert all(r.prompt_tokens == 700 for r in trace)

    def test_deterministic_and_seed_sensitive(self):
        from repro.workloads.traces import generate_piecewise_trace

        a = generate_piecewise_trace([(2.0, 5.0), (4.0, 5.0)], seed=3)
        b = generate_piecewise_trace([(2.0, 5.0), (4.0, 5.0)], seed=3)
        c = generate_piecewise_trace([(2.0, 5.0), (4.0, 5.0)], seed=4)
        assert a == b
        assert a != c

    def test_empty_segments_rejected(self):
        import pytest

        from repro.errors import SpecError
        from repro.workloads.traces import generate_piecewise_trace

        with pytest.raises(SpecError):
            generate_piecewise_trace([])


class TestIterTrace:
    """Chunked (windowed) trace generation and lazy merging."""

    def test_deterministic_and_arrival_ordered(self):
        from repro.workloads.traces import iter_trace

        config = TraceConfig(rate=8, duration=45, output_tokens=60)
        a = list(iter_trace(config, seed=5, window=10.0))
        b = list(iter_trace(config, seed=5, window=10.0))
        assert a == b
        assert len(a) > 100
        assert all(x.arrival <= y.arrival for x, y in zip(a, a[1:]))
        assert [r.request_id for r in a] == list(range(len(a)))
        assert all(0.0 <= r.arrival < config.duration for r in a)

    def test_seed_and_window_sensitive(self):
        from repro.workloads.traces import iter_trace

        config = TraceConfig(rate=8, duration=30)
        base = list(iter_trace(config, seed=5, window=10.0))
        assert list(iter_trace(config, seed=6, window=10.0)) != base
        assert list(iter_trace(config, seed=5, window=15.0)) != base

    def test_matches_generate_trace_distribution(self):
        from repro.workloads.traces import iter_trace

        config = TraceConfig(rate=20, duration=120, output_tokens=80)
        lazy = list(iter_trace(config, seed=2, window=30.0))
        eager = generate_trace(config, seed=2)
        # Different draws, same process: counts within Poisson noise and
        # matching mean lengths (windowing must not bias either).
        assert abs(len(lazy) - len(eager)) < 6 * np.sqrt(config.rate * config.duration)
        lazy_mean = np.mean([r.output_tokens for r in lazy])
        eager_mean = np.mean([r.output_tokens for r in eager])
        assert abs(lazy_mean - eager_mean) / eager_mean < 0.15

    def test_rejects_nonpositive_window(self):
        from repro.workloads.traces import iter_trace

        with pytest.raises(SpecError):
            list(iter_trace(TraceConfig(rate=1, duration=5), window=0.0))

    def test_imerge_matches_eager_merge(self):
        from repro.workloads.traces import imerge_traces, merge_traces

        a = generate_trace(TraceConfig(rate=3, duration=20), seed=0)
        b = generate_trace(TraceConfig(rate=5, duration=20), seed=1)
        lazy = list(imerge_traces(iter(a), iter(b)))
        eager = merge_traces(a, b)
        assert [r.arrival for r in lazy] == [r.arrival for r in eager]
        assert [(r.prompt_tokens, r.output_tokens) for r in lazy] == [
            (r.prompt_tokens, r.output_tokens) for r in eager
        ]
        assert [r.request_id for r in lazy] == list(range(len(a) + len(b)))

    @given(seed=st.integers(0, 50), window=st.floats(5.0, 40.0))
    @settings(max_examples=15, deadline=None)
    def test_windowing_always_ordered_with_contiguous_ids(self, seed, window):
        from repro.workloads.traces import iter_trace

        trace = list(iter_trace(TraceConfig(rate=5, duration=60), seed=seed, window=window))
        assert all(x.arrival <= y.arrival for x, y in zip(trace, trace[1:]))
        assert [r.request_id for r in trace] == list(range(len(trace)))
