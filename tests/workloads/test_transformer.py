"""ModelSpec geometry and parameter-counting tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SpecError
from repro.workloads.models import GPT3_175B, LLAMA3_8B, LLAMA3_70B, LLAMA3_405B
from repro.workloads.transformer import AttentionKind, MLPKind, ModelSpec


def small_spec(**overrides) -> ModelSpec:
    base = dict(
        name="tiny", layers=4, hidden=256, heads=8, kv_heads=4,
        ffn_hidden=1024, vocab=1000,
    )
    base.update(overrides)
    return ModelSpec(**base)


class TestValidation:
    def test_rejects_nonpositive_layers(self):
        with pytest.raises(SpecError):
            small_spec(layers=0)

    def test_rejects_kv_heads_above_heads(self):
        with pytest.raises(SpecError):
            small_spec(kv_heads=16)

    def test_rejects_heads_not_multiple_of_kv(self):
        with pytest.raises(SpecError):
            small_spec(heads=8, kv_heads=3)

    def test_rejects_indivisible_hidden_without_head_dim(self):
        with pytest.raises(SpecError):
            small_spec(hidden=250)

    def test_explicit_head_dim_allows_indivisible_hidden(self):
        spec = small_spec(hidden=250, head_dim=32)
        assert spec.head_dim == 32

    def test_rejects_negative_kv_tokens(self):
        with pytest.raises(SpecError):
            small_spec().kv_bytes(-1)


class TestAttentionKinds:
    def test_mha_detection(self):
        assert small_spec(kv_heads=8).attention_kind is AttentionKind.MHA

    def test_gqa_detection(self):
        assert small_spec(kv_heads=4).attention_kind is AttentionKind.GQA

    def test_mqa_detection(self):
        assert small_spec(kv_heads=1).attention_kind is AttentionKind.MQA

    def test_gqa_group(self):
        assert small_spec(kv_heads=2).gqa_group == 4


class TestParameterCounts:
    """The headline counts should land on the models' nominal sizes."""

    @pytest.mark.parametrize(
        "model,nominal_b,tolerance",
        [
            (LLAMA3_8B, 8.0, 0.08),
            (LLAMA3_70B, 70.0, 0.03),
            (GPT3_175B, 175.0, 0.03),
            (LLAMA3_405B, 405.0, 0.03),
        ],
    )
    def test_nominal_parameter_counts(self, model, nominal_b, tolerance):
        actual_b = model.param_count / 1e9
        assert actual_b == pytest.approx(nominal_b, rel=tolerance)

    def test_attn_params_formula(self):
        spec = small_spec()
        expected = 256 * 256 + 2 * 256 * (4 * 32) + 256 * 256
        assert spec.attn_params_per_layer == expected

    def test_gated_mlp_has_three_matrices(self):
        gated = small_spec(mlp_kind=MLPKind.GATED)
        plain = small_spec(mlp_kind=MLPKind.PLAIN)
        assert gated.mlp_params_per_layer == 3 * 256 * 1024
        assert plain.mlp_params_per_layer == 2 * 256 * 1024

    def test_tied_embeddings_halve_embedding_params(self):
        tied = small_spec(tie_embeddings=True)
        untied = small_spec(tie_embeddings=False)
        assert untied.embedding_params == 2 * tied.embedding_params

    def test_weight_bytes_scales_with_format(self):
        spec = small_spec()
        assert spec.weight_bytes(2.0) == 2 * spec.weight_bytes(1.0)


class TestKVCache:
    def test_kv_bytes_per_token_formula(self):
        spec = small_spec(kv_heads=4)
        # 2 (K and V) * kv_dim * layers
        assert spec.kv_bytes_per_token() == 2 * 4 * 32 * 4

    def test_gpt3_kv_dwarfs_llama_kv(self):
        """The structural fact behind Figure 3b's GPT-3 caption."""
        ratio = GPT3_175B.kv_bytes_per_token() / LLAMA3_70B.kv_bytes_per_token()
        assert ratio > 10

    def test_kv_bytes_linear_in_tokens(self):
        spec = small_spec()
        assert spec.kv_bytes(200) == 2 * spec.kv_bytes(100)


class TestScaled:
    def test_scaled_layer_count(self):
        spec = small_spec().scaled(0.5)
        assert spec.layers == 2

    def test_scaled_keeps_other_fields(self):
        spec = small_spec().scaled(2.0, name="double")
        assert spec.name == "double"
        assert spec.hidden == 256


class TestProperties:
    @given(
        layers=st.integers(1, 200),
        heads=st.sampled_from([4, 8, 16, 32, 64]),
        kv_div=st.sampled_from([1, 2, 4]),
        head_dim=st.sampled_from([32, 64, 128]),
        ffn_mult=st.integers(2, 8),
    )
    @settings(max_examples=50, deadline=None)
    def test_param_count_positive_and_consistent(self, layers, heads, kv_div, head_dim, ffn_mult):
        hidden = heads * head_dim
        spec = ModelSpec(
            name="gen", layers=layers, hidden=hidden, heads=heads,
            kv_heads=heads // kv_div, ffn_hidden=hidden * ffn_mult, vocab=5000,
        )
        assert spec.param_count > 0
        assert spec.param_count == layers * spec.params_per_layer + spec.embedding_params
        # dense FLOPs/token ~ 2 * non-embedding params
        assert spec.flops_per_token_dense() == pytest.approx(
            2.0 * layers * spec.params_per_layer
        )

    @given(tokens=st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_kv_monotone_in_tokens(self, tokens):
        spec = small_spec()
        assert spec.kv_bytes(tokens + 1) > spec.kv_bytes(tokens)
