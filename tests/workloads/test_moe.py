"""MoE model-spec tests and expert-parallel stage accounting."""

from __future__ import annotations

import pytest

from repro.core.inference import DecodeWorkload, PrefillWorkload, decode_iteration, prefill_pass
from repro.core.parallelism import TensorParallel
from repro.core.roofline import RooflinePolicy
from repro.core.search import search_best_config
from repro.core.stages import decode_stage_costs
from repro.errors import SpecError
from repro.hardware.gpu import H100, LITE_MEMBW
from repro.workloads.moe import MIXTRAL_8X7B, MoEModelSpec
from repro.workloads.models import get_model
from repro.workloads.transformer import MLPKind


def tiny_moe(**overrides) -> MoEModelSpec:
    base = dict(
        name="tiny-moe", layers=4, hidden=256, heads=8, kv_heads=4,
        ffn_hidden=512, vocab=1000, n_experts=8, experts_per_token=2,
    )
    base.update(overrides)
    return MoEModelSpec(**base)


class TestSpec:
    def test_registered_in_catalogue(self):
        assert get_model("mixtral-8x7b") is MIXTRAL_8X7B

    def test_total_vs_active_params(self):
        assert MIXTRAL_8X7B.param_count == pytest.approx(46.7e9, rel=0.02)
        assert MIXTRAL_8X7B.active_param_count == pytest.approx(12.9e9, rel=0.03)
        assert MIXTRAL_8X7B.sparsity == pytest.approx(3.6, rel=0.05)

    def test_expert_params(self):
        spec = tiny_moe()
        assert spec.expert_params == 3 * 256 * 512  # gated
        assert spec.mlp_params_per_layer == 8 * spec.expert_params + 256 * 8

    def test_validation(self):
        with pytest.raises(SpecError):
            tiny_moe(n_experts=0)
        with pytest.raises(SpecError):
            tiny_moe(experts_per_token=9)

    def test_experts_touched_limits(self):
        spec = tiny_moe()
        assert spec.experts_touched(0) == 0.0
        assert spec.experts_touched(10_000) == pytest.approx(8.0, rel=1e-3)
        assert 0 < spec.experts_touched(1) <= 2.0


class TestStageAccounting:
    def test_moe_mlp_stage_name_and_alltoall(self):
        tp = TensorParallel(tiny_moe(), 4)
        costs = decode_stage_costs(tp, 16, 100, RooflinePolicy())
        mlp = costs.layer_stages[2]
        assert mlp.name == "moe_mlp"
        ops = [op for op, _ in mlp.comm]
        assert ops == ["all_to_all", "all_to_all"]

    def test_active_flops_below_dense_equivalent(self):
        """Top-2 of 8 experts: MLP FLOPs are 2/8 of the all-experts dense
        equivalent."""
        moe = tiny_moe()
        dense_like = tiny_moe(n_experts=1, experts_per_token=1, ffn_hidden=512 * 8)
        tp_moe = TensorParallel(moe, 4)
        tp_dense = TensorParallel(dense_like, 4)
        policy = RooflinePolicy()
        f_moe = decode_stage_costs(tp_moe, 16, 100, policy).layer_stages[2].flops
        f_dense = decode_stage_costs(tp_dense, 16, 100, policy).layer_stages[2].flops
        assert f_moe == pytest.approx(f_dense * 2 / 8, rel=1e-6)

    def test_small_batch_touches_few_experts(self):
        """At batch 1 the weight read covers ~top-k experts, not all 8."""
        tp = TensorParallel(tiny_moe(), 1)
        policy = RooflinePolicy()
        small = decode_stage_costs(tp, 1, 100, policy).layer_stages[2].mem_bytes
        large = decode_stage_costs(tp, 256, 100, policy).layer_stages[2].mem_bytes
        assert small < large
        assert small < 0.5 * large


class TestMoEThroughModel:
    def test_prefill_and_decode_run(self):
        p = prefill_pass(MIXTRAL_8X7B, H100, 2, PrefillWorkload(4))
        d = decode_iteration(MIXTRAL_8X7B, H100, 2, DecodeWorkload(32))
        assert p.fits_memory and d.fits_memory
        assert p.latency > 0 and d.latency > 0

    def test_search_feasible(self):
        result = search_best_config(MIXTRAL_8X7B, H100, "decode")
        assert result.feasible

    def test_membw_advantage_amplified_for_moe(self):
        """MoE decode reads ALL resident experts at large batch while only
        top-k contribute FLOPs — even more memory-bound than dense, so the
        Lite+MemBW advantage grows (extension finding)."""
        from repro.workloads.models import LLAMA3_70B

        h100_moe = search_best_config(MIXTRAL_8X7B, H100, "decode").best_tokens_per_s_per_sm
        lite_moe = search_best_config(MIXTRAL_8X7B, LITE_MEMBW, "decode").best_tokens_per_s_per_sm
        h100_dense = search_best_config(LLAMA3_70B, H100, "decode").best_tokens_per_s_per_sm
        lite_dense = search_best_config(LLAMA3_70B, LITE_MEMBW, "decode").best_tokens_per_s_per_sm
        assert lite_moe / h100_moe > lite_dense / h100_dense
