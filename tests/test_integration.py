"""Cross-module integration tests: full pipelines through the library."""

from __future__ import annotations

import pytest

from repro.cluster.scheduler import InstanceSpec, PhasePools
from repro.cluster.simulator import ServingSimulator, SimConfig
from repro.cluster.spec import ClusterSpec, lite_equivalent
from repro.core.inference import DecodeWorkload, PrefillWorkload, decode_iteration, prefill_pass
from repro.core.roofline import CommModel, RooflinePolicy
from repro.core.search import SearchConstraints, search_best_config
from repro.hardware.cost import CostModel
from repro.hardware.gpu import H100, LITE, LITE_MEMBW, LITE_NETBW_FLOPS
from repro.hardware.scaling import LiteScaling, derive_lite_gpu
from repro.workloads.models import LLAMA3_8B, LLAMA3_70B
from repro.workloads.traces import TraceConfig, generate_trace


class TestDerivedGPUThroughModel:
    """A GPU derived by the scaling module must run through the entire
    performance model, not just the pre-registered Table 1 rows."""

    def test_derived_lite_in_search(self):
        custom = derive_lite_gpu(H100, LiteScaling(split=2, mem_bw_boost=1.4))
        result = search_best_config(LLAMA3_70B, custom, "decode")
        assert result.feasible

    def test_split_2_between_h100_and_lite(self):
        """A 2-way split's decode efficiency lands between H100 and the
        4-way Lite at the same aggregate silicon."""
        half = derive_lite_gpu(H100, LiteScaling(split=2))
        h100 = search_best_config(LLAMA3_70B, H100, "decode").best_tokens_per_s_per_sm
        mid = search_best_config(LLAMA3_70B, half, "decode").best_tokens_per_s_per_sm
        assert mid == pytest.approx(h100, rel=0.25)


class TestSearchToSimulatorConsistency:
    """The simulator's service times must agree with the analytical model
    it is built on."""

    def test_decode_time_matches_model(self):
        inst = InstanceSpec(LLAMA3_70B, H100, 2)
        direct = decode_iteration(LLAMA3_70B, H100, 2, DecodeWorkload(32, 1750))
        assert inst.decode_time(32, 1750) == pytest.approx(direct.latency)

    def test_prefill_time_matches_model(self):
        inst = InstanceSpec(LLAMA3_70B, H100, 2)
        direct = prefill_pass(LLAMA3_70B, H100, 2, PrefillWorkload(4, 1500))
        assert inst.prefill_time(4, 1500) == pytest.approx(direct.latency)

    def test_simulated_tbt_matches_analytical_band(self):
        """Steady-state simulated TBT should sit inside the analytical
        range for the batches the instance actually runs."""
        pools = PhasePools(
            prefill=InstanceSpec(LLAMA3_8B, H100, 1),
            n_prefill=2,
            decode=InstanceSpec(LLAMA3_8B, H100, 1),
            n_decode=1,
            max_prefill_batch=4,
            max_decode_batch=32,
        )
        trace = generate_trace(TraceConfig(rate=4.0, duration=20.0, output_tokens=100), seed=2)
        report = ServingSimulator(pools, SimConfig(max_sim_time=600.0)).run(trace)
        lo = pools.decode.decode_time(1, 1500)
        hi = pools.decode.decode_time(32, 2100)
        assert lo <= report.tbt_mean <= hi


class TestSplitwiseDeployment:
    """Phase-specialized Lite variants end-to-end: the paper's Splitwise-at-
    finer-scale story."""

    def test_specialized_beats_generic_pools(self):
        trace = generate_trace(
            TraceConfig(rate=12.0, duration=20.0, output_tokens=150), seed=5
        )

        def run(prefill_gpu, decode_gpu):
            pools = PhasePools(
                prefill=InstanceSpec(LLAMA3_8B, prefill_gpu, 2),
                n_prefill=2,
                decode=InstanceSpec(LLAMA3_8B, decode_gpu, 2),
                n_decode=2,
                max_prefill_batch=4,
                max_decode_batch=64,
            )
            return ServingSimulator(pools, SimConfig(max_sim_time=300.0)).run(trace)

        generic = run(LITE, LITE)
        specialized = run(LITE_NETBW_FLOPS, LITE_MEMBW)
        assert specialized.completed >= generic.completed
        assert specialized.tbt_mean < generic.tbt_mean
        assert specialized.ttft_p50 <= generic.ttft_p50 * 1.05


class TestEconomicsPipeline:
    def test_equal_compute_cheaper_lite_cluster(self):
        """Cluster-level Figure 2: same FLOPS/memory, lower GPU capex."""
        base = ClusterSpec(H100, 8)
        lite = lite_equivalent(base)
        assert lite.total_flops == pytest.approx(base.total_flops)
        assert lite.gpu_capex(CostModel()) < base.gpu_capex(CostModel())

    def test_perf_per_dollar_improves_for_decode(self):
        """The paper's bottom line: matching performance at lower cost.
        Lite+MemBW decode throughput per (modeled) dollar beats H100."""
        cm = CostModel()
        h100 = search_best_config(LLAMA3_70B, H100, "decode").best
        lite = search_best_config(LLAMA3_70B, LITE_MEMBW, "decode").best
        h100_cost = ClusterSpec(H100, h100.n_gpus).gpu_capex(cm)
        lite_cost = ClusterSpec(LITE_MEMBW, lite.n_gpus).gpu_capex(cm)
        h100_eff = h100.result.tokens_per_s / h100_cost
        lite_eff = lite.result.tokens_per_s / lite_cost
        assert lite_eff > h100_eff


class TestPolicySensitivity:
    """The comm-model ablation: conclusions under the three charging models."""

    @pytest.mark.parametrize("comm", list(CommModel), ids=lambda c: c.value)
    def test_all_models_produce_feasible_results(self, comm):
        policy = RooflinePolicy(comm_model=comm)
        result = search_best_config(LLAMA3_70B, LITE, "decode", policy=policy)
        assert result.feasible

    def test_flat_ring_harshest_on_lite(self):
        """Under honest flat-ring physics the Lite decode story weakens —
        the reproduction's headline sensitivity finding."""
        h100 = search_best_config(LLAMA3_70B, H100, "decode").best_tokens_per_s_per_sm
        results = {}
        for comm in CommModel:
            policy = RooflinePolicy(comm_model=comm)
            lite = search_best_config(LLAMA3_70B, LITE_MEMBW, "decode", policy=policy)
            results[comm] = lite.best_tokens_per_s_per_sm / h100
        assert results[CommModel.FLAT_RING] <= results[CommModel.HIERARCHICAL]
        assert results[CommModel.HIERARCHICAL] <= results[CommModel.SHARDED] + 1e-9
