"""The reproduction gate: every quantitative claim of the paper, asserted.

These tests define what "reproduced" means for this repository.  Where the
paper states a number, the model must land near it; where a figure shows a
shape (who wins, roughly by how much, where crossovers fall), the shape must
hold.  EXPERIMENTS.md records the same comparisons with commentary.
"""

from __future__ import annotations

import pytest

from repro.analysis.figures import fig3a_prefill_series, fig3b_decode_series
from repro.hardware.cooling import CoolingKind, CoolingModel, rack_cooling_requirement
from repro.hardware.cost import CostModel
from repro.hardware.die import shoreline_ratio
from repro.hardware.gpu import H100, LITE
from repro.hardware.yieldmodel import yield_gain
from repro.network.links import CPO_OPTICS, PLUGGABLE_OPTICS
from repro.network.switches import circuit_vs_packet_energy_gain, path_energy_comparison


@pytest.fixture(scope="module")
def fig3a():
    return fig3a_prefill_series()


@pytest.fixture(scope="module")
def fig3b():
    return fig3b_decode_series()


class TestSection2Claims:
    def test_yield_gain_claim(self):
        """'the yield rate can be increased by 1.8x when a H100-like compute
        die area is reduced by 1/4th'."""
        assert yield_gain(814.0, 4) == pytest.approx(1.8, abs=0.1)

    def test_cost_claim(self):
        """'corresponding to almost 50% reduction in manufacturing cost'."""
        assert CostModel().cost_reduction(814.0, 4) == pytest.approx(0.5, abs=0.08)

    def test_shoreline_claim(self):
        """'reducing the die area to 1/4th doubles the perimeter ...
        yielding a cluster with 2x the bandwidth-to-compute ratio'."""
        assert shoreline_ratio(4) == pytest.approx(2.0)

    def test_cooling_claim(self):
        """'Smaller single-die GPUs can be air-cooled separately and even
        sustain higher clock frequencies'."""
        air = CoolingModel(CoolingKind.AIR)
        assert not air.can_cool(H100)
        assert air.can_cool(LITE)
        assert air.overclock_headroom(LITE) >= 1.10

    def test_liquid_rack_elimination(self):
        """Section 3: Lite racks at the same compute avoid liquid cooling."""
        assert rack_cooling_requirement(H100, 72) is CoolingKind.LIQUID_COLD_PLATE
        assert rack_cooling_requirement(LITE, 72) is CoolingKind.AIR


class TestSection1NetworkClaims:
    def test_cpo_reach_claim(self):
        """'much better reach (10s of meters)'."""
        assert CPO_OPTICS.reach_m >= 10.0

    def test_cpo_efficiency_claim(self):
        """CPO cuts the electrical path -> better pJ/bit than pluggables."""
        assert CPO_OPTICS.pj_per_bit < 0.5 * PLUGGABLE_OPTICS.pj_per_bit

    def test_circuit_switching_energy_claim(self):
        """Section 3: '(i) more than 50% better energy efficiency'."""
        assert circuit_vs_packet_energy_gain() > 0.5
        assert path_energy_comparison()["saving"] > 0.4


class TestFigure3aPrefill:
    """Caption: 'All configurations perform similarly.  As the model sizes
    grow, the Lite cluster underperforms due to increased collectives
    causing network bottlenecks.  Increasing the network bandwidth
    compensates the increased network demand, overclocking improves
    performance further as prefill workloads are compute-bound.'"""

    def test_small_model_all_similar(self, fig3a):
        series = fig3a["Llama3-70B"]
        for gpu in ("Lite", "Lite+NetBW"):
            assert series[gpu] == pytest.approx(1.0, abs=0.1)

    def test_lite_degrades_with_model_size(self, fig3a):
        lite = [fig3a[m]["Lite"] for m in ("Llama3-70B", "GPT3-175B", "Llama3-405B")]
        assert lite[0] >= lite[1] - 0.01 >= lite[2] - 0.01  # non-increasing trend
        assert lite[2] < 0.9  # visible degradation at 405B

    def test_netbw_compensates(self, fig3a):
        for model in ("Llama3-70B", "GPT3-175B", "Llama3-405B"):
            assert fig3a[model]["Lite+NetBW"] >= fig3a[model]["Lite"] - 1e-9
        assert fig3a["Llama3-405B"]["Lite+NetBW"] > 0.9

    def test_overclocking_improves_further(self, fig3a):
        for model in ("Llama3-70B", "GPT3-175B", "Llama3-405B"):
            assert fig3a[model]["Lite+NetBW+FLOPS"] >= fig3a[model]["Lite+NetBW"] - 0.02

    def test_overclock_exceeds_h100_for_small_models(self, fig3a):
        assert fig3a["Llama3-70B"]["Lite+NetBW+FLOPS"] > 1.0


class TestFigure3bDecode:
    """Caption: 'As model sizes and thus the number of required GPUs grow,
    the Lite cluster underperforms due to increased memory access
    intensities.  The degradation is worse with GPT-3 due to it having more
    KV-heads resulting in proportionally longer memory-bound stages.  As
    Lite-GPUs utilize their available shoreline for more memory bandwidth,
    performance improves and exceeds the current H100 cluster.'"""

    def test_lite_below_h100_everywhere(self, fig3b):
        for model in ("Llama3-70B", "GPT3-175B", "Llama3-405B"):
            assert fig3b[model]["Lite"] < 1.0

    def test_gpt3_dips_below_llama70b(self, fig3b):
        """'The degradation is worse with GPT-3' (vs. its size neighbour)."""
        assert fig3b["GPT3-175B"]["Lite"] <= fig3b["Llama3-70B"]["Lite"] + 1e-9

    def test_membw_exceeds_h100_for_70b_and_gpt3(self, fig3b):
        assert fig3b["Llama3-70B"]["Lite+MemBW"] > 1.0
        assert fig3b["GPT3-175B"]["Lite+MemBW"] > 1.0

    def test_membw_peak_matches_figure_scale(self, fig3b):
        """The figure's y-axis tops out at 1.6: the best Lite+MemBW bar
        lands in the 1.3-1.7 band."""
        best = max(fig3b[m]["Lite+MemBW"] for m in ("Llama3-70B", "GPT3-175B"))
        assert 1.3 < best < 1.75

    def test_extra_netbw_helps_decode_everywhere(self, fig3b):
        for model in ("Llama3-70B", "GPT3-175B", "Llama3-405B"):
            assert fig3b[model]["Lite+MemBW+NetBW"] >= fig3b[model]["Lite+MemBW"]

    def test_405b_divergence_documented(self, fig3b):
        """Known divergence (EXPERIMENTS.md): at 405B the forced 32-way
        tensor parallelism keeps Lite+MemBW below H100 under our collective
        model; the +NetBW variant recovers past 1.0."""
        assert fig3b["Llama3-405B"]["Lite+MemBW"] < 1.0
        assert fig3b["Llama3-405B"]["Lite+MemBW+NetBW"] > 1.0


class TestTable1Consistency:
    def test_sm_normalization_basis(self):
        """32 Lite GPUs == 8 H100s in SMs: the tokens/s/SM comparisons are
        at equal aggregate silicon."""
        assert 32 * LITE.sms == 8 * H100.sms
