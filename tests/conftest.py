"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.roofline import CommModel, RooflinePolicy
from repro.core.search import SearchConstraints
from repro.hardware.gpu import H100, LITE, LITE_MEMBW, LITE_NETBW
from repro.workloads.models import GPT3_175B, LLAMA3_8B, LLAMA3_70B, LLAMA3_405B


@pytest.fixture
def policy() -> RooflinePolicy:
    """Default (paper) roofline policy."""
    return RooflinePolicy()


@pytest.fixture
def ring_policy() -> RooflinePolicy:
    """Flat-ring (pessimistic) policy."""
    return RooflinePolicy(comm_model=CommModel.FLAT_RING)


@pytest.fixture
def constraints() -> SearchConstraints:
    """Paper search constraints (TTFT <= 1 s, TBT <= 50 ms)."""
    return SearchConstraints()


@pytest.fixture(params=[LLAMA3_70B, GPT3_175B, LLAMA3_405B], ids=lambda m: m.name)
def paper_model(request):
    """Each of the paper's three evaluated models."""
    return request.param


@pytest.fixture(params=[H100, LITE, LITE_NETBW, LITE_MEMBW], ids=lambda g: g.name)
def any_gpu(request):
    """A representative set of GPU types."""
    return request.param
