"""SimulationEnsemble tests: seed derivation, aggregation, parallel/caching."""

from __future__ import annotations

import math

import pytest

from repro.cluster.failures import FailureModel
from repro.cluster.scheduler import ColocatedPool, InstanceSpec, PhasePools
from repro.cluster.simulator import SimConfig, SimReport
from repro.errors import SpecError
from repro.exec.cache import ResultCache
from repro.exec.ensemble import EnsembleReport, SimulationEnsemble, aggregate_reports
from repro.hardware.gpu import H100
from repro.workloads.models import LLAMA3_8B
from repro.workloads.traces import TraceConfig, generate_trace


def trace(rate: float = 2.0, duration: float = 10.0):
    return generate_trace(
        TraceConfig(rate=rate, duration=duration, output_tokens=60, output_spread=0.5), seed=4
    )


def colocated_pool() -> ColocatedPool:
    return ColocatedPool(
        instance=InstanceSpec(LLAMA3_8B, H100, 1), n_instances=2, max_decode_batch=64
    )


def phase_pools() -> PhasePools:
    return PhasePools(
        prefill=InstanceSpec(LLAMA3_8B, H100, 1), n_prefill=1,
        decode=InstanceSpec(LLAMA3_8B, H100, 1), n_decode=1,
        max_prefill_batch=4, max_decode_batch=64,
    )


def ensemble(deployment, n_replicas: int = 3, **kwargs) -> SimulationEnsemble:
    kwargs.setdefault("failure_model", FailureModel(mtbf=120.0, mttr=15.0))
    return SimulationEnsemble(
        deployment, SimConfig(max_sim_time=120.0), n_replicas=n_replicas, **kwargs
    )


def _report(**overrides) -> SimReport:
    fields = dict(
        completed=10, dropped=0, duration=10.0, ttft_p50=0.1, ttft_p99=0.2,
        tbt_mean=0.01, tbt_p99=0.02, e2e_p50=1.0, e2e_p99=2.0,
        output_tokens_per_s=100.0, prefill_utilization=0.5, decode_utilization=0.5,
        requeued_on_failure=0, restarted_requests=0,
    )
    fields.update(overrides)
    return SimReport(**fields)


class TestConstruction:
    def test_rejects_zero_replicas(self):
        with pytest.raises(SpecError):
            SimulationEnsemble(colocated_pool(), n_replicas=0)

    def test_rejects_non_deployment(self):
        with pytest.raises(SpecError):
            SimulationEnsemble("not a deployment")

    def test_replica_seeds_distinct_and_stable(self):
        e = ensemble(colocated_pool(), n_replicas=8)
        seeds = e.replica_seeds()
        assert len(set(seeds)) == 8
        assert seeds == ensemble(colocated_pool(), n_replicas=8).replica_seeds()


class TestAggregation:
    def test_mean_and_ci(self):
        reports = [_report(output_tokens_per_s=v) for v in (90.0, 100.0, 110.0)]
        agg = aggregate_reports(reports, [1, 2, 3])
        assert agg.mean.output_tokens_per_s == pytest.approx(100.0)
        # s = 10, n = 3: half-width = 1.96 * 10 / sqrt(3)
        assert agg.hi.output_tokens_per_s - agg.lo.output_tokens_per_s == pytest.approx(
            2 * 1.959963984540054 * 10.0 / math.sqrt(3.0)
        )
        assert agg.n_replicas == 3 and len(agg.reports) == 3

    def test_single_replica_zero_width(self):
        agg = aggregate_reports([_report()], [0])
        assert agg.mean == agg.lo == agg.hi

    def test_nan_metrics_stay_nan(self):
        empty = _report(completed=0, ttft_p50=float("nan"), ttft_p99=float("nan"))
        agg = aggregate_reports([empty, _report()], [0, 1])
        assert math.isnan(agg.mean.ttft_p50) and math.isnan(agg.lo.ttft_p50)
        assert agg.mean.completed == pytest.approx(5.0)

    def test_rejects_empty(self):
        with pytest.raises(SpecError):
            aggregate_reports([], [])


class TestRun:
    def test_phase_split_and_colocated(self):
        for deployment in (phase_pools(), colocated_pool()):
            report = ensemble(deployment).run(trace())
            assert isinstance(report, EnsembleReport)
            assert report.n_replicas == 3
            assert report.mean.completed > 0
            assert report.lo.output_tokens_per_s <= report.hi.output_tokens_per_s

    def test_parallel_matches_serial(self):
        serial = ensemble(colocated_pool()).run(trace(), workers=1)
        parallel = ensemble(colocated_pool()).run(trace(), workers=3)
        assert serial == parallel

    def test_distinct_failure_seeds_differ(self):
        # With aggressive failures the replicas must not all be clones.
        e = ensemble(colocated_pool(), n_replicas=6,
                     failure_model=FailureModel(mtbf=20.0, mttr=10.0))
        report = e.run(trace(duration=20.0))
        assert len({r.requeued_on_failure for r in report.reports} |
                   {r.output_tokens_per_s for r in report.reports}) > 1

    def test_no_failure_model_replicas_identical(self):
        e = SimulationEnsemble(colocated_pool(), SimConfig(max_sim_time=120.0), n_replicas=3)
        report = e.run(trace())
        assert report.reports[0] == report.reports[1] == report.reports[2]
        assert report.mean == report.lo == report.hi

    def test_cache_cold_equals_warm(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = ensemble(colocated_pool()).run(trace(), cache=cache)
        assert cache.cache_info()["stores"] == 3
        warm = ensemble(colocated_pool()).run(trace(), cache=cache)
        assert cold == warm
        assert cache.cache_info()["hits"] == 3
