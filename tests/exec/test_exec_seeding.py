"""Seed/key derivation tests."""

from __future__ import annotations

import pytest

from repro.errors import SpecError
from repro.exec.seeding import SEED_SPACE, derive_seed, stable_digest


class TestStableDigest:
    def test_deterministic(self):
        assert stable_digest(1, "a", [2, 3]) == stable_digest(1, "a", [2, 3])

    def test_order_sensitive(self):
        assert stable_digest(1, 2) != stable_digest(2, 1)

    def test_handles_dataclasses_and_enums(self):
        from repro.core.inference import Phase
        from repro.cluster.failures import FailureModel

        a = stable_digest(FailureModel(mtbf=100.0, mttr=10.0), Phase.DECODE)
        b = stable_digest(FailureModel(mtbf=100.0, mttr=10.0), Phase.DECODE)
        c = stable_digest(FailureModel(mtbf=200.0, mttr=10.0), Phase.DECODE)
        assert a == b != c

    def test_handles_arbitrary_objects_via_repr(self):
        class Thing:
            def __repr__(self):
                return "Thing<42>"

        assert stable_digest(Thing()) == stable_digest(Thing())


class TestDeriveSeed:
    def test_deterministic_and_in_range(self):
        seed = derive_seed(0, "replica", 3)
        assert seed == derive_seed(0, "replica", 3)
        assert 0 <= seed < SEED_SPACE

    def test_distinct_components_distinct_seeds(self):
        seeds = {derive_seed(0, "replica", i) for i in range(64)}
        assert len(seeds) == 64

    def test_no_cross_family_collision(self):
        # The classic base+i scheme collides here; derivation must not.
        assert derive_seed(0, "replica", 1) != derive_seed(1, "replica", 0)

    def test_rejects_non_int_base(self):
        with pytest.raises(SpecError):
            derive_seed("zero", "replica", 0)
