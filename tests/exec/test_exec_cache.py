"""On-disk result-cache tests: round-trips, salting, corruption, stats."""

from __future__ import annotations

import json

import pytest

from repro.cluster.scheduler import InstanceSpec, PhasePools
from repro.cluster.simulator import ServingSimulator, SimConfig
from repro.errors import SpecError
from repro.exec.cache import MISS, ResultCache
from repro.hardware.gpu import H100
from repro.workloads.models import LLAMA3_8B
from repro.workloads.traces import TraceConfig, generate_trace


def small_report():
    pools = PhasePools(
        prefill=InstanceSpec(LLAMA3_8B, H100, 1), n_prefill=1,
        decode=InstanceSpec(LLAMA3_8B, H100, 1), n_decode=1,
        max_prefill_batch=4, max_decode_batch=32,
    )
    trace = generate_trace(TraceConfig(rate=2.0, duration=5.0, output_tokens=40), seed=1)
    return ServingSimulator(pools, SimConfig(max_sim_time=60.0)).run(trace)


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key("point", 1)
        assert cache.get(key) is MISS
        assert cache.put(key, {"v": 1.5})
        assert cache.get(key) == {"v": 1.5}
        assert cache.cache_info() == {"hits": 1, "misses": 1, "stores": 1, "entries": 1}

    def test_simreport_roundtrip_is_bit_identical(self, tmp_path):
        cache = ResultCache(tmp_path)
        report = small_report()
        key = cache.key("report")
        assert cache.put(key, report)
        assert cache.get(key) == report  # exact float round-trip through JSON

    def test_salt_mismatch_is_a_miss(self, tmp_path):
        old = ResultCache(tmp_path, salt="v1")
        key = old.key("x")
        old.put(key, 42)
        renewed = ResultCache(tmp_path, salt="v2")
        assert renewed.get(key) is MISS  # code-version bump invalidates

    def test_corrupt_record_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key("x")
        cache.put(key, 1)
        path = next(tmp_path.glob("*/*.json"))
        path.write_text("{not json")
        assert cache.get(key) is MISS

    def test_unencodable_value_declines(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert not cache.put(cache.key("x"), object())
        assert cache.entries() == 0

    def test_rejects_non_digest_keys(self, tmp_path):
        with pytest.raises(SpecError):
            ResultCache(tmp_path).get("../../etc/passwd")

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(3):
            cache.put(cache.key(i), i)
        assert cache.clear() == 3
        assert cache.entries() == 0

    def test_record_is_valid_json_with_salt(self, tmp_path):
        cache = ResultCache(tmp_path, salt="s")
        cache.put(cache.key("x"), [1, 2])
        record = json.loads(next(tmp_path.glob("*/*.json")).read_text())
        assert record["salt"] == "s"
        assert record["payload"] == {"type": "json", "data": [1, 2]}


class TestTopologyKeySeparation:
    """Regression: topology sweeps must never collide with cached
    non-network runs — the key and derived seed both hash the topology and
    placement spec."""

    def test_keys_differ_when_only_topology_differs(self, tmp_path):
        from repro.cluster.placement import PoolShape, place
        from repro.network.topology import DirectConnectTopology

        cache = ResultCache(tmp_path)
        base_point = ("colocated", "Llama3-8B", 1, 2.0)
        legacy = cache.key("cli-sweep", base_point + ("none", 0, 4, "packed", "none"))
        topo = DirectConnectTopology(n_gpus=8, group=4)
        placed = place(topo, [PoolShape("colocated", 2, 4)])
        networked = cache.key(
            "cli-sweep", base_point + ("direct", 8, 4, "packed", "fabric"), placed
        )
        assert legacy != networked
        cache.put(legacy, {"tok_s": 1.0})
        assert cache.get(networked) is MISS

    def test_derive_seed_incorporates_topology_and_placement(self):
        from repro.cluster.placement import PoolShape, place
        from repro.exec.seeding import derive_seed
        from repro.network.topology import DirectConnectTopology, SwitchedTopology

        direct = DirectConnectTopology(n_gpus=8, group=4)
        switched = SwitchedTopology(n_gpus=8)
        shapes = [PoolShape("colocated", 2, 4)]
        packed = place(direct, shapes, placer="packed")
        scattered = place(direct, shapes, placer="scattered")
        bare = derive_seed(7, "components")
        with_packed = derive_seed(7, "components", direct, packed)
        with_scattered = derive_seed(7, "components", direct, scattered)
        other_fabric = derive_seed(7, "components", switched, packed)
        assert len({bare, with_packed, with_scattered, other_fabric}) == 4
        # Deterministic: the same spec always derives the same seed.
        assert with_packed == derive_seed(7, "components", direct, packed)


class TestSizeBytes:
    def test_empty_and_missing_root(self, tmp_path):
        from repro.exec.cache import ResultCache

        cache = ResultCache(tmp_path / "nowhere")
        assert cache.size_bytes() == 0

    def test_size_grows_with_records(self, tmp_path):
        from repro.exec.cache import ResultCache

        cache = ResultCache(tmp_path / "c")
        cache.put(cache.key("a"), {"x": 1})
        one = cache.size_bytes()
        assert one > 0
        cache.put(cache.key("b"), {"y": list(range(100))})
        assert cache.size_bytes() > one
        cache.clear()
        assert cache.size_bytes() == 0
