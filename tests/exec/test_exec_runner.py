"""Parallel runner tests: ordering, determinism, isolation, caching."""

from __future__ import annotations

import pytest

from repro.errors import SpecError
from repro.exec.cache import ResultCache
from repro.exec.runner import Job, JobOutcome, run_many


def _square(x: int) -> int:
    return x * x


def _boom(x: int) -> int:
    raise ValueError(f"bad point {x}")


def _mixed(x: int) -> int:
    if x == 2:
        raise RuntimeError("two is right out")
    return x + 10


class TestRunMany:
    def test_preserves_job_order(self):
        outcomes = run_many([Job(fn=_square, args=(i,)) for i in range(8)])
        assert [o.value for o in outcomes] == [i * i for i in range(8)]

    def test_workers_equivalent_to_serial(self):
        jobs = [Job(fn=_square, args=(i,), label=str(i)) for i in range(10)]
        serial = run_many(jobs, workers=1)
        parallel = run_many(jobs, workers=4)
        assert [o.value for o in serial] == [o.value for o in parallel]
        assert [o.label for o in parallel] == [str(i) for i in range(10)]

    def test_error_isolation(self):
        outcomes = run_many([Job(fn=_mixed, args=(i,)) for i in range(4)], workers=2)
        assert [o.ok for o in outcomes] == [True, True, False, True]
        assert outcomes[2].error == "RuntimeError: two is right out"
        assert [o.value for o in outcomes] == [10, 11, None, 13]

    def test_all_errors_never_raise(self):
        outcomes = run_many([Job(fn=_boom, args=(i,)) for i in range(3)])
        assert all(not o.ok for o in outcomes)
        assert all("bad point" in o.error for o in outcomes)

    def test_rejects_zero_workers(self):
        with pytest.raises(SpecError):
            run_many([Job(fn=_square, args=(1,))], workers=0)

    def test_empty_jobs(self):
        assert run_many([]) == []

    def test_kwargs_pass_through(self):
        outcomes = run_many([Job(fn=int, args=("ff",), kwargs={"base": 16})])
        assert outcomes[0].value == 255


class TestRunManyCache:
    def test_hits_skip_execution_and_match(self, tmp_path):
        cache = ResultCache(tmp_path)
        jobs = [Job(fn=_square, args=(i,), key=cache.key("sq", i)) for i in range(5)]
        cold = run_many(jobs, cache=cache)
        warm = run_many(jobs, cache=cache)
        assert [o.value for o in cold] == [o.value for o in warm]
        assert not any(o.cached for o in cold)
        assert all(o.cached for o in warm)
        assert cache.cache_info()["hits"] == 5

    def test_errors_are_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        jobs = [Job(fn=_boom, args=(1,), key=cache.key("boom"))]
        run_many(jobs, cache=cache)
        assert cache.entries() == 0
        again = run_many(jobs, cache=cache)
        assert not again[0].ok and not again[0].cached

    def test_unkeyed_jobs_bypass_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_many([Job(fn=_square, args=(3,))], cache=cache)
        assert cache.cache_info() == {"hits": 0, "misses": 0, "stores": 0, "entries": 0}

    def test_parallel_workers_populate_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        jobs = [Job(fn=_square, args=(i,), key=cache.key("p", i)) for i in range(6)]
        run_many(jobs, workers=3, cache=cache)
        assert cache.entries() == 6
        warm = run_many(jobs, workers=3, cache=cache)
        assert all(o.cached for o in warm)


class TestJobOutcome:
    def test_ok_property(self):
        assert JobOutcome(value=1).ok
        assert not JobOutcome(error="ValueError: x").ok
