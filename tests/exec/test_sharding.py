"""Sharded simulation: partitioning, deterministic merge, worker parity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.scheduler import ColocatedPool, InstanceSpec, PhasePools
from repro.cluster.simulator import SimConfig
from repro.errors import SpecError
from repro.exec.sharding import (
    merge_shard_results,
    run_sharded,
    shard_deployment,
    shard_requests,
)
from repro.hardware.gpu import H100
from repro.workloads.models import LLAMA3_8B
from repro.workloads.traces import TraceConfig, generate_trace, iter_trace


def _pools(n_prefill=4, n_decode=4):
    return PhasePools(
        prefill=InstanceSpec(LLAMA3_8B, H100, 1),
        n_prefill=n_prefill,
        decode=InstanceSpec(LLAMA3_8B, H100, 1),
        n_decode=n_decode,
        max_prefill_batch=4,
        max_decode_batch=64,
    )


def _colocated(n_instances=4):
    return ColocatedPool(
        instance=InstanceSpec(LLAMA3_8B, H100, 1),
        n_instances=n_instances,
        max_decode_batch=64,
    )


def _trace(rate=12.0, duration=40.0, seed=7):
    return generate_trace(
        TraceConfig(rate=rate, duration=duration, output_tokens=50), seed=seed
    )


def _rel(a, b):
    return abs(a - b) / max(abs(b), 1e-12)


class TestShardRequests:
    def test_least_loaded_balances_tokens(self):
        trace = _trace()
        shards = shard_requests(trace, 4)
        assert sum(len(s) for s in shards) == len(trace)
        loads = [sum(r.prompt_tokens + r.output_tokens for r in s) for s in shards]
        assert max(loads) - min(loads) < 0.05 * max(loads)
        # Arrival order preserved within every shard.
        for shard in shards:
            assert all(a.arrival <= b.arrival for a, b in zip(shard, shard[1:]))

    def test_round_robin_stripes(self):
        trace = _trace(rate=5, duration=10)
        shards = shard_requests(trace, 3, policy="round-robin")
        assert [r.request_id for r in shards[0]] == [r.request_id for r in trace][::3]

    def test_deterministic(self):
        trace = _trace()
        assert shard_requests(trace, 3) == shard_requests(trace, 3)

    def test_weights_skew_assignment(self):
        trace = _trace()
        light, heavy = shard_requests(trace, 2, weights=[1.0, 3.0])
        tokens = lambda s: sum(r.prompt_tokens + r.output_tokens for r in s)  # noqa: E731
        assert 2.0 < tokens(heavy) / tokens(light) < 4.0

    def test_validation(self):
        with pytest.raises(SpecError):
            shard_requests([], 0)
        with pytest.raises(SpecError):
            shard_requests([], 2, weights=[1.0])
        with pytest.raises(SpecError):
            shard_requests([], 2, weights=[1.0, -1.0])
        with pytest.raises(SpecError):
            shard_requests([], 2, policy=42)


class TestShardDeployment:
    def test_phase_split_even_division(self):
        subs = shard_deployment(_pools(5, 7), 3)
        assert [d.n_prefill for d in subs] == [2, 2, 1]
        assert [d.n_decode for d in subs] == [3, 2, 2]
        assert all(d.max_decode_batch == 64 for d in subs)

    def test_colocated_division(self):
        subs = shard_deployment(_colocated(5), 2)
        assert [d.n_instances for d in subs] == [3, 2]

    def test_rejects_more_shards_than_instances(self):
        with pytest.raises(SpecError):
            shard_deployment(_pools(2, 8), 3)
        with pytest.raises(SpecError):
            shard_deployment(_colocated(2), 3)
        with pytest.raises(SpecError):
            shard_deployment("not-a-deployment", 1)


class TestRunSharded:
    def test_shards_n_matches_shards_1_within_tolerance(self):
        trace = _trace()
        config = SimConfig(max_sim_time=600)
        one = run_sharded(_pools(), trace, config, shards=1)
        four = run_sharded(_pools(), trace, config, shards=4)
        # Counters are bit-exact: every request completes in both factorings.
        assert one.completed == four.completed == len(trace)
        assert one.dropped == four.dropped == 0
        assert one.requeued_on_failure == four.requeued_on_failure == 0
        # Latency quantiles agree within the merge tolerance.
        assert _rel(four.ttft_p50, one.ttft_p50) <= 0.02
        assert _rel(four.ttft_p99, one.ttft_p99) <= 0.05
        assert np.isfinite(four.e2e_p99)

    def test_factoring_is_exact_when_routing_is_preserved(self):
        # Under "index-order" the unsharded engine fills instance 0 first
        # and the shard router sends every request to shard 0 — the same
        # event sequence on the same instance, so every latency quantile
        # must match to the sketch's determinism, not a tolerance.
        trace = _trace(rate=3, duration=40)
        config = SimConfig(max_sim_time=600)
        one = run_sharded(_colocated(), trace, config, shards=1,
                          shard_policy="index-order")
        four = run_sharded(_colocated(), trace, config, shards=4,
                           shard_policy="index-order")
        assert one.completed == four.completed == len(trace)
        assert four.ttft_p50 == one.ttft_p50
        assert four.ttft_p99 == one.ttft_p99
        assert four.e2e_p99 == one.e2e_p99

    def test_workers_bit_identical_to_serial(self):
        trace = _trace()
        config = SimConfig(max_sim_time=600)
        serial = run_sharded(_pools(), trace, config, shards=4, workers=1)
        pooled = run_sharded(_pools(), trace, config, shards=4, workers=4)
        assert serial == pooled

    def test_deterministic_across_runs(self):
        trace = _trace()
        config = SimConfig(max_sim_time=600)
        a = run_sharded(_colocated(), trace, config, shards=2)
        b = run_sharded(_colocated(), trace, config, shards=2)
        assert a == b

    def test_accepts_lazy_traces(self):
        config = SimConfig(max_sim_time=600)
        trace_config = TraceConfig(rate=10, duration=30, output_tokens=40)
        report = run_sharded(
            _colocated(), iter_trace(trace_config, seed=1, window=10.0),
            config, shards=2,
        )
        assert report.completed == len(list(iter_trace(trace_config, seed=1, window=10.0)))

    def test_failure_seeds_derive_per_shard(self):
        from repro.cluster.failures import FailureModel

        trace = _trace(rate=8, duration=30)
        config = SimConfig(max_sim_time=600)
        model = FailureModel(mtbf=120.0, mttr=30.0)
        a = run_sharded(_pools(), trace, config, shards=2,
                        failure_model=model, failure_seed=0)
        b = run_sharded(_pools(), trace, config, shards=2,
                        failure_model=model, failure_seed=1)
        assert a == run_sharded(_pools(), trace, config, shards=2,
                                failure_model=model, failure_seed=0)
        assert a != b  # different base seeds draw different shard schedules

    def test_economics_sum_across_shards(self):
        trace = _trace()
        config = SimConfig(max_sim_time=600)
        report = run_sharded(_pools(), trace, config, shards=4)
        assert report.gpu_seconds > 0
        assert report.usd_cost > 0
        assert report.usd_per_mtoken == pytest.approx(
            report.usd_cost / (report.output_tokens_per_s * report.duration / 1e6),
            rel=1e-6,
        )

    def test_rejects_bad_shard_count(self):
        with pytest.raises(SpecError):
            run_sharded(_pools(), [], shards=0)


class TestResilienceParity:
    """Satellite: shards=N and shards=1 agree on restart/retry counters."""

    CONFIG_KW = dict(
        deadline_s=20.0,
        queue_timeout_s=3.0,
        retry="fixed",
        checkpoint_interval=16,
    )
    #: One scripted outage per decode instance half, in whole-deployment
    #: indices: shard 0 owns decode 0-1, shard 1 owns decode 2-3.
    FAILURES = ((6.0, "decode", 0, 15.0), (9.0, "decode", 3, 15.0))

    @staticmethod
    def _heavy_trace():
        # Decode-heavy enough that every instance holds live work when its
        # scripted outage lands — real victims in both factorings.
        return generate_trace(
            TraceConfig(rate=20, duration=25, output_tokens=300), seed=7
        )

    def _run(self, shards, shard_policy="round-robin"):
        from repro.cluster.resilience import ResilienceConfig

        return run_sharded(
            _pools(2, 4),
            self._heavy_trace(),
            SimConfig(max_sim_time=600, resilience=ResilienceConfig(**self.CONFIG_KW)),
            shards=shards,
            shard_policy=shard_policy,
            failures=self.FAILURES,
        )

    def test_shards_1_matches_unsharded_exactly(self):
        from repro.cluster.resilience import ResilienceConfig
        from repro.cluster.simulator import ServingSimulator

        sharded = self._run(1)
        direct = ServingSimulator(
            _pools(2, 4),
            SimConfig(
                max_sim_time=600,
                metrics="streaming",
                resilience=ResilienceConfig(**self.CONFIG_KW),
            ),
            failures=list(self.FAILURES),
        ).run(self._heavy_trace())
        for field in (
            "completed", "restarted_requests", "requeued_on_failure", "retries",
            "timed_out", "deadline_missed", "abandoned", "goodput_tokens",
            "failure_hits", "slo_violations",
        ):
            assert getattr(sharded, field) == getattr(direct, field), field
        assert sharded.mttr_s == pytest.approx(direct.mttr_s)
        assert sharded.availability == pytest.approx(direct.availability)

    def test_restart_counters_consistent_across_shardings(self):
        one = self._run(1)
        two = self._run(2)
        # Request-id sets per shard are disjoint, so the distinct-request
        # restart counter genuinely sums; both factorings must see real
        # victims from their scripted outage.
        assert one.failure_hits == two.failure_hits == len(self.FAILURES)
        assert one.restarted_requests > 0 and two.restarted_requests > 0
        assert two.restarted_requests <= two.requeued_on_failure
        assert one.completed == two.completed
        assert one.mttr_s > 0 and two.mttr_s > 0
        assert 0 < two.availability < 1

    def test_scripted_failures_reject_bad_indices(self):
        with pytest.raises(SpecError):
            run_sharded(
                _pools(2, 4), [], shards=2, failures=[(1.0, "decode", 9, 5.0)]
            )
        with pytest.raises(SpecError):
            run_sharded(
                _pools(2, 4), [], shards=2, failures=[(1.0, "gpu", 0, 5.0)]
            )


class TestMergeShardResults:
    def test_rejects_empty(self):
        with pytest.raises(SpecError):
            merge_shard_results([])
