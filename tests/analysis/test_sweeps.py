"""Sweep-helper tests."""

from __future__ import annotations

import pytest

from repro.analysis.sweeps import argbest, sweep_1d, sweep_grid
from repro.errors import SpecError


class TestSweep1D:
    def test_basic(self):
        records = sweep_1d(lambda x: x * 2, [1, 2, 3], name="n")
        assert records == [
            {"n": 1, "result": 2},
            {"n": 2, "result": 4},
            {"n": 3, "result": 6},
        ]

    def test_empty_rejected(self):
        with pytest.raises(SpecError):
            sweep_1d(lambda x: x, [])


class TestSweepGrid:
    def test_cross_product(self):
        records = sweep_grid(lambda x, y: x * y, [1, 2], [10, 20])
        assert len(records) == 4
        assert records[-1] == {"x": 2, "y": 20, "result": 40}

    def test_empty_rejected(self):
        with pytest.raises(SpecError):
            sweep_grid(lambda x, y: 0, [], [1])


class TestArgbest:
    def test_max_and_min(self):
        records = sweep_1d(lambda x: (x - 2) ** 2, [0, 1, 2, 3])
        assert argbest(records, key=lambda r: r["result"], maximize=False)["x"] == 2
        assert argbest(records, key=lambda r: r["result"], maximize=True)["x"] == 0

    def test_empty(self):
        with pytest.raises(SpecError):
            argbest([], key=lambda r: 0)
