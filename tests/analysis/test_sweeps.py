"""Sweep-helper tests."""

from __future__ import annotations

import pytest

from repro.analysis.sweeps import argbest, sweep_1d, sweep_grid
from repro.errors import SpecError


class TestSweep1D:
    def test_basic(self):
        records = sweep_1d(lambda x: x * 2, [1, 2, 3], name="n")
        assert records == [
            {"n": 1, "result": 2},
            {"n": 2, "result": 4},
            {"n": 3, "result": 6},
        ]

    def test_empty_rejected(self):
        with pytest.raises(SpecError):
            sweep_1d(lambda x: x, [])


class TestSweepGrid:
    def test_cross_product(self):
        records = sweep_grid(lambda x, y: x * y, [1, 2], [10, 20])
        assert len(records) == 4
        assert records[-1] == {"x": 2, "y": 20, "result": 40}

    def test_empty_rejected(self):
        with pytest.raises(SpecError):
            sweep_grid(lambda x, y: 0, [], [1])


class TestArgbest:
    def test_max_and_min(self):
        records = sweep_1d(lambda x: (x - 2) ** 2, [0, 1, 2, 3])
        assert argbest(records, key=lambda r: r["result"], maximize=False)["x"] == 2
        assert argbest(records, key=lambda r: r["result"], maximize=True)["x"] == 0

    def test_empty(self):
        with pytest.raises(SpecError):
            argbest([], key=lambda r: 0)


def _cube(x):
    return x ** 3


def _fragile(x):
    if x == 0:
        raise ZeroDivisionError("x must be nonzero")
    return 1.0 / x


class TestErrorRecords:
    def test_failed_point_carries_error_not_abort(self):
        records = sweep_1d(_fragile, [2, 0, 4], name="x")
        assert records[0] == {"x": 2, "result": 0.5}
        assert records[1]["x"] == 0 and "result" not in records[1]
        assert records[1]["error"] == "ZeroDivisionError: x must be nonzero"
        assert records[2] == {"x": 4, "result": 0.25}

    def test_grid_errors_isolated(self):
        records = sweep_grid(lambda x, y: x / y, [1, 2], [0, 2])
        errored = [r for r in records if "error" in r]
        assert len(errored) == 2 and all(r["y"] == 0 for r in errored)

    def test_argbest_skips_errored_records(self):
        records = sweep_1d(_fragile, [4, 0, 2], name="x")
        best = argbest(records, key=lambda r: r["result"])
        assert best["x"] == 2

    def test_argbest_all_errored_raises(self):
        records = sweep_1d(_fragile, [0], name="x")
        with pytest.raises(SpecError):
            argbest(records, key=lambda r: r["result"])


class TestParallelSweeps:
    def test_workers_bit_identical(self):
        serial = sweep_grid(_mul, [1, 2, 3], [10, 20], x_name="a", y_name="b")
        parallel = sweep_grid(_mul, [1, 2, 3], [10, 20], x_name="a", y_name="b", workers=3)
        assert serial == parallel

    def test_workers_1d(self):
        assert sweep_1d(_cube, [1, 2, 3]) == sweep_1d(_cube, [1, 2, 3], workers=2)


def _mul(x, y):
    return x * y


class TestCachedSweeps:
    def test_cold_equals_warm_and_hits_advance(self, tmp_path):
        from repro.exec.cache import ResultCache

        cache = ResultCache(tmp_path)
        cold = sweep_1d(_cube, [1, 2, 3], cache=cache)
        assert cache.cache_info()["stores"] == 3
        warm = sweep_1d(_cube, [1, 2, 3], cache=cache)
        assert cold == warm
        assert cache.cache_info()["hits"] == 3

    def test_distinct_callables_do_not_collide(self, tmp_path):
        from repro.exec.cache import ResultCache

        cache = ResultCache(tmp_path)
        sweep_1d(_cube, [2], cache=cache)
        records = sweep_1d(_fragile, [2], cache=cache)
        assert records[0]["result"] == 0.5

    def test_same_scope_lambdas_do_not_collide(self, tmp_path):
        from repro.exec.cache import ResultCache

        cache = ResultCache(tmp_path)
        squared = sweep_1d(lambda x: x * x, [2], cache=cache)
        bumped = sweep_1d(lambda x: x + 1, [2], cache=cache)
        assert squared[0]["result"] == 4
        assert bumped[0]["result"] == 3  # must not hit the first lambda's record

    def test_closures_with_distinct_cells_do_not_collide(self, tmp_path):
        from repro.exec.cache import ResultCache

        def scaler(k):
            return lambda x: x * k

        cache = ResultCache(tmp_path)
        assert sweep_1d(scaler(2), [3], cache=cache)[0]["result"] == 6
        assert sweep_1d(scaler(5), [3], cache=cache)[0]["result"] == 15

    def test_partials_are_cacheable_with_stable_keys(self, tmp_path):
        import functools
        from repro.exec.cache import ResultCache

        cache = ResultCache(tmp_path)
        fn = functools.partial(pow, 2)
        cold = sweep_1d(fn, [3, 4], cache=cache)
        warm = sweep_1d(functools.partial(pow, 2), [3, 4], cache=cache)
        assert cold == warm == [{"x": 3, "result": 8}, {"x": 4, "result": 16}]
        assert cache.cache_info()["hits"] == 2


def _diff(a, b):
    return a - b


def _with_inner(x):
    helper = lambda v: v * 3  # noqa: E731 - nested code object on purpose
    return helper(x)


class TestCacheKeyStability:
    def test_axis_swapped_grids_do_not_collide(self, tmp_path):
        """Regression: sorted(point.items()) erased positional order, so
        sweep_grid(f, [1], [2]) and sweep_grid(f, [2], [1]) with swapped
        axis names shared a key and returned the wrong cached result."""
        from repro.exec.cache import ResultCache

        cache = ResultCache(tmp_path)
        first = sweep_grid(_diff, [1], [2], x_name="p", y_name="q", cache=cache)
        assert first[0]["result"] == -1
        swapped = sweep_grid(_diff, [2], [1], x_name="q", y_name="p", cache=cache)
        assert swapped[0]["result"] == 1  # f(2, 1), not the cached f(1, 2)

    def test_functions_with_nested_code_have_stable_ids(self):
        """Regression: repr(co_consts) embeds memory addresses of nested
        code objects, defeating the cross-run on-disk cache."""
        from repro.analysis.sweeps import _callable_id

        a = _callable_id(_with_inner)
        b = _callable_id(_with_inner)
        assert a == b
        # The fingerprint must not contain a '0x...' address from a repr'd
        # nested code object.
        assert "0x" not in a


class TestParetoFront:
    def records(self):
        return [
            {"name": "cheap-bad", "cost": 1.0, "quality": 1.0},
            {"name": "mid", "cost": 2.0, "quality": 3.0},
            {"name": "dominated", "cost": 3.0, "quality": 2.0},
            {"name": "dear-good", "cost": 5.0, "quality": 5.0},
        ]

    def test_front_drops_dominated(self):
        from repro.analysis.sweeps import pareto_front

        front = pareto_front(
            self.records(), cost=lambda r: r["cost"], quality=lambda r: r["quality"]
        )
        assert [r["name"] for r in front] == ["cheap-bad", "mid", "dear-good"]

    def test_errored_records_skipped(self):
        from repro.analysis.sweeps import pareto_front

        records = self.records() + [{"name": "broken", "error": "boom"}]
        front = pareto_front(
            records, cost=lambda r: r["cost"], quality=lambda r: r["quality"]
        )
        assert all("error" not in r for r in front)

    def test_duplicates_all_survive(self):
        from repro.analysis.sweeps import pareto_front

        records = [{"cost": 1.0, "quality": 1.0}, {"cost": 1.0, "quality": 1.0}]
        front = pareto_front(records, lambda r: r["cost"], lambda r: r["quality"])
        assert len(front) == 2
