"""Property tests for the constant-memory streaming metrics.

The acceptance bar for ``metrics="streaming"``: sketch p50/p99 within 1%
relative error of the exact percentiles on 10k+ samples, merges that are
deterministic and associative (counters bit-exact), and bounded state no
matter how long the stream runs.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.streaming import QuantileSketch, ReservoirSampler, StreamingMetrics
from repro.errors import SpecError


def _rel_err(estimate: float, truth: float) -> float:
    return abs(estimate - truth) / max(abs(truth), 1e-12)


def _latency_like(rng: np.random.Generator, n: int) -> np.ndarray:
    """Lognormal with a heavy tail — the shape simulator latencies take."""
    return rng.lognormal(mean=-2.0, sigma=0.8, size=n)


class TestQuantileSketchAccuracy:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_p50_p99_within_one_percent_at_10k(self, seed):
        rng = np.random.default_rng(seed)
        values = _latency_like(rng, 20_000)
        sketch = QuantileSketch()
        sketch.extend(values)
        for q in (0.5, 0.99):
            exact = float(np.quantile(values, q))
            assert _rel_err(sketch.quantile(q), exact) <= 0.01, f"q={q} seed={seed}"

    @given(seed=st.integers(0, 200), n=st.integers(10_000, 40_000))
    @settings(max_examples=10, deadline=None)
    def test_accuracy_property(self, seed, n):
        rng = np.random.default_rng(seed)
        values = _latency_like(rng, n)
        sketch = QuantileSketch()
        sketch.extend(values)
        assert _rel_err(sketch.quantile(0.5), float(np.quantile(values, 0.5))) <= 0.01
        assert _rel_err(sketch.quantile(0.99), float(np.quantile(values, 0.99))) <= 0.01

    def test_extremes_and_mean_are_exact(self):
        rng = np.random.default_rng(7)
        values = _latency_like(rng, 5_000)
        sketch = QuantileSketch()
        sketch.extend(values)
        assert sketch.quantile(0.0) == float(values.min())
        assert sketch.quantile(1.0) == float(values.max())
        assert sketch.mean == pytest.approx(float(values.mean()), rel=1e-12)

    def test_memory_stays_bounded(self):
        sketch = QuantileSketch(compression=100)
        rng = np.random.default_rng(0)
        for chunk in range(20):
            sketch.extend(_latency_like(rng, 10_000))
            # Centroid count must not grow with the stream: the t-digest
            # size bound is a small multiple of the compression parameter.
            assert sketch.centroid_count() <= 4 * 100
        assert sketch.count == 200_000

    def test_empty_and_validation(self):
        sketch = QuantileSketch()
        assert np.isnan(sketch.quantile(0.5))
        assert np.isnan(sketch.mean)
        with pytest.raises(SpecError):
            sketch.quantile(1.5)
        with pytest.raises(SpecError):
            QuantileSketch(compression=5)


class TestSketchMerge:
    def test_merge_is_deterministic(self):
        rng = np.random.default_rng(3)
        parts_values = [_latency_like(rng, 5_000) for _ in range(4)]

        def build():
            out = QuantileSketch()
            for values in parts_values:
                part = QuantileSketch()
                part.extend(values)
                out.merge(part)
            return out

        a, b = build(), build()
        assert a.count == b.count
        assert a.quantiles((0.5, 0.9, 0.99)) == b.quantiles((0.5, 0.9, 0.99))

    @given(seed=st.integers(0, 100), shards=st.integers(2, 6))
    @settings(max_examples=10, deadline=None)
    def test_sharded_merge_matches_single_sketch(self, seed, shards):
        rng = np.random.default_rng(seed)
        values = _latency_like(rng, 4_000 * shards)
        whole = QuantileSketch()
        whole.extend(values)
        merged = QuantileSketch()
        for chunk in np.array_split(values, shards):
            part = QuantileSketch()
            part.extend(chunk)
            merged.merge(part)
        # Counters bit-exact; quantiles agree within the rank-error bound.
        assert merged.count == whole.count == len(values)
        assert merged.mean == pytest.approx(whole.mean, rel=1e-9)
        for q in (0.5, 0.99):
            exact = float(np.quantile(values, q))
            assert _rel_err(merged.quantile(q), exact) <= 0.01
            assert _rel_err(merged.quantile(q), whole.quantile(q)) <= 0.02

    def test_merge_order_insensitive_within_tolerance(self):
        rng = np.random.default_rng(11)
        chunks = [_latency_like(rng, 3_000) for _ in range(3)]

        def merged(order):
            out = QuantileSketch()
            for i in order:
                part = QuantileSketch()
                part.extend(chunks[i])
                out.merge(part)
            return out

        forward = merged([0, 1, 2])
        backward = merged([2, 1, 0])
        assert forward.count == backward.count
        for q in (0.5, 0.99):
            assert _rel_err(forward.quantile(q), backward.quantile(q)) <= 0.02

    def test_merge_rejects_other_types(self):
        with pytest.raises(SpecError):
            QuantileSketch().merge(object())

    def test_pickle_round_trip(self):
        sketch = QuantileSketch()
        sketch.extend(np.random.default_rng(0).exponential(size=3_000))
        clone = pickle.loads(pickle.dumps(sketch))
        assert clone.count == sketch.count
        assert clone.quantile(0.99) == sketch.quantile(0.99)


class TestReservoirSampler:
    def test_uniformity_and_determinism(self):
        a = ReservoirSampler(capacity=256, seed=9)
        b = ReservoirSampler(capacity=256, seed=9)
        values = np.arange(10_000, dtype=float)
        for v in values:
            a.add(v)
            b.add(v)
        assert a.sample == b.sample
        assert a.seen == 10_000 and len(a.sample) == 256
        # A uniform sample's median tracks the stream median loosely.
        assert abs(a.percentile(0.5) - 5_000) < 1_500

    def test_merge_tracks_combined_stream(self):
        left = ReservoirSampler(capacity=512, seed=1)
        right = ReservoirSampler(capacity=512, seed=2)
        for v in range(5_000):
            left.add(float(v))
        for v in range(5_000, 10_000):
            right.add(float(v))
        left.merge(right)
        assert left.seen == 10_000
        assert len(left.sample) == 512
        assert 2_000 < left.percentile(0.5) < 8_000

    def test_validation(self):
        with pytest.raises(SpecError):
            ReservoirSampler(capacity=0)
        with pytest.raises(SpecError):
            ReservoirSampler().merge(3)


class TestStreamingMetrics:
    def test_record_and_merge_counters_bit_exact(self):
        rng = np.random.default_rng(4)
        parts = []
        total_completed = 0
        total_tokens = 0
        for _ in range(3):
            m = StreamingMetrics()
            for _ in range(1_000):
                tokens = int(rng.integers(1, 200))
                m.record(
                    ttft=float(rng.exponential(0.1)),
                    mean_tbt=float(rng.exponential(0.01)),
                    e2e=float(rng.exponential(2.0)),
                    output_tokens=tokens,
                )
                total_completed += 1
                total_tokens += tokens
            parts.append(m)
        merged = StreamingMetrics.merged(parts)
        assert merged.completed == total_completed
        assert merged.output_tokens == total_tokens
        # Inputs untouched by the static merge.
        assert parts[0].completed == 1_000

    def test_merged_rejects_empty(self):
        with pytest.raises(SpecError):
            StreamingMetrics.merged([])

    def test_pickle_round_trip(self):
        m = StreamingMetrics()
        for i in range(2_000):
            m.record(ttft=0.01 * (i % 37), mean_tbt=0.001, e2e=0.5, output_tokens=10)
        clone = pickle.loads(pickle.dumps(m))
        assert clone.completed == m.completed
        assert clone.ttft.quantile(0.99) == m.ttft.quantile(0.99)
