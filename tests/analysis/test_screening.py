"""Two-tier screening tests: margin dominance, error isolation, end-to-end."""

from __future__ import annotations

import pytest

from repro.analysis import screening, sweeps
from repro.analysis.screening import screen_then_simulate
from repro.core import metrics
from repro.errors import SpecError


def fake_eval(backend, size, rate):
    """Quality rises with size and rate; fluid overestimates by 3%."""
    quality = size * 10.0 + rate
    if backend == "fluid":
        quality *= 1.03
    return {"backend": backend, "quality": quality}


def cost_of(record):
    return float(record["size"])


def quality_of(record):
    return record["result"]["quality"]


GRID = [{"size": s, "rate": r} for s in (1, 2, 3) for r in (1.0, 2.0)]


class TestParetoUnification:
    def test_single_implementation(self):
        assert sweeps.pareto_front is metrics.pareto_front
        assert screening.pareto_front is metrics.pareto_front

    def test_tuple_mode_unchanged(self):
        assert metrics.pareto_front([(1, 1), (2, 3), (3, 2)]) == [(1, 1), (2, 3)]
        assert metrics.pareto_front([]) == []

    def test_record_mode_unchanged(self):
        recs = [{"c": 1, "q": 1}, {"c": 2, "q": 3}, {"c": 3, "q": 2}]
        front = metrics.pareto_front(recs, lambda r: r["c"], lambda r: r["q"])
        assert [r["c"] for r in front] == [1, 2]

    def test_record_mode_skips_errors(self):
        recs = [{"c": 1, "q": 1}, {"c": 0, "q": 9, "error": "boom"}]
        front = metrics.pareto_front(recs, lambda r: r["c"], lambda r: r["q"])
        assert front == [{"c": 1, "q": 1}]

    def test_half_specified_accessors_rejected(self):
        with pytest.raises(SpecError, match="both"):
            metrics.pareto_front([{"c": 1}], cost=lambda r: r["c"])


class TestScreenThenSimulate:
    def test_promoted_are_event_backed_and_subset(self):
        result = screen_then_simulate(
            fake_eval, GRID, cost=cost_of, quality=quality_of, margin=0.10
        )
        assert result.n_points == len(GRID)
        assert 1 <= len(result.promoted) <= len(GRID)
        points = {(p["size"], p["rate"]) for p in GRID}
        for record in result.promoted:
            assert (record["size"], record["rate"]) in points
            assert record["result"]["backend"] == "event"
        for record in result.screened:
            assert record["result"]["backend"] == "fluid"

    def test_margin_zero_promotes_weak_front_only(self):
        result = screen_then_simulate(
            fake_eval, GRID, cost=cost_of, quality=quality_of, margin=0.0
        )
        front = metrics.pareto_front(list(result.screened), cost_of, quality_of)
        assert {(r["size"], r["rate"]) for r in result.promoted} == {
            (r["size"], r["rate"]) for r in front
        }

    def test_wider_margin_promotes_superset(self):
        narrow = screen_then_simulate(
            fake_eval, GRID, cost=cost_of, quality=quality_of, margin=0.0
        )
        wide = screen_then_simulate(
            fake_eval, GRID, cost=cost_of, quality=quality_of, margin=0.5
        )
        narrow_pts = {(r["size"], r["rate"]) for r in narrow.promoted}
        wide_pts = {(r["size"], r["rate"]) for r in wide.promoted}
        assert narrow_pts <= wide_pts

    def test_best_is_event_verdict(self):
        result = screen_then_simulate(
            fake_eval, GRID, cost=cost_of, quality=quality_of, margin=0.10
        )
        assert result.best["size"] == 3 and result.best["rate"] == 2.0
        assert result.best["result"]["backend"] == "event"

    def test_errored_points_isolated_not_promoted(self):
        def flaky(backend, size, rate):
            if size == 2:
                raise ValueError("infeasible config")
            return fake_eval(backend, size, rate)

        result = screen_then_simulate(
            flaky, GRID, cost=cost_of, quality=quality_of, margin=0.0
        )
        errored = [r for r in result.screened if "error" in r]
        assert len(errored) == 2
        assert all(r["size"] != 2 for r in result.promoted)

    def test_all_errors_is_clean_failure(self):
        def broken(backend, size, rate):
            raise ValueError("nope")

        with pytest.raises(SpecError, match="errored"):
            screen_then_simulate(broken, GRID, cost=cost_of, quality=quality_of)

    def test_empty_grid_rejected(self):
        with pytest.raises(SpecError, match="non-empty"):
            screen_then_simulate(fake_eval, [], cost=cost_of, quality=quality_of)

    def test_negative_margin_rejected(self):
        with pytest.raises(SpecError, match="margin"):
            screen_then_simulate(
                fake_eval, GRID, cost=cost_of, quality=quality_of, margin=-0.1
            )

    def test_table_renders_every_point(self):
        result = screen_then_simulate(
            fake_eval, GRID, cost=cost_of, quality=quality_of, margin=0.10
        )
        text = result.table(cost_of, quality_of)
        assert "promoted" in text or "best" in text
        assert len(text.splitlines()) == 3 + len(GRID)

    def test_promotion_fraction(self):
        result = screen_then_simulate(
            fake_eval, GRID, cost=cost_of, quality=quality_of, margin=0.0
        )
        assert result.promotion_fraction == pytest.approx(len(result.promoted) / len(GRID))


class TestEndToEndSimulation:
    def test_small_real_screen_recovers_event_argbest(self):
        from repro.cluster.scheduler import ColocatedPool, InstanceSpec
        from repro.cluster.simulator import ColocatedSimulator, SimConfig
        from repro.hardware.gpu import H100
        from repro.workloads.models import LLAMA3_8B
        from repro.workloads.traces import TraceConfig, generate_trace

        def run_point(backend, rate, size):
            trace = generate_trace(
                TraceConfig(rate=rate, duration=8.0, output_tokens=60, output_spread=0.3),
                seed=11,
            )
            pool = ColocatedPool(
                InstanceSpec(LLAMA3_8B, H100, 1), size,
                max_decode_batch=64, chunk_tokens=512,
            )
            return ColocatedSimulator(pool, SimConfig(backend=backend)).run(trace)

        points = [{"rate": r, "size": s} for r in (2.0, 6.0) for s in (1, 2)]
        result = screen_then_simulate(
            run_point, points,
            cost=lambda rec: float(rec["size"]),
            quality=lambda rec: rec["result"].output_tokens_per_s,
            margin=0.10,
        )
        # Ground truth: event-simulate the full grid ourselves.
        truth = max(
            points,
            key=lambda p: run_point("event", p["rate"], p["size"]).output_tokens_per_s,
        )
        assert (result.best["rate"], result.best["size"]) == (truth["rate"], truth["size"])
        assert len(result.promoted) < len(points)
