"""Figure-builder tests (shapes asserted in detail in test_paper_claims)."""

from __future__ import annotations

import pytest

from repro.analysis.figures import (
    FIG3A_GPUS,
    FIG3B_GPUS,
    fig1_evolution_series,
    fig2_deployment_comparison,
    fig3a_prefill_series,
    fig3b_decode_series,
)
from repro.analysis.report import experiment_report
from repro.errors import SpecError


class TestFig1:
    def test_rows_complete(self):
        rows = fig1_evolution_series()
        assert len(rows) >= 4
        for row in rows:
            assert {"name", "year", "dies", "transistors_b", "power_density"} <= set(row)


class TestFig2:
    def test_headline_numbers(self):
        fig2 = fig2_deployment_comparison()
        assert fig2["yield_gain"] == pytest.approx(1.75, abs=0.1)
        assert fig2["cost_reduction"] == pytest.approx(0.5, abs=0.1)
        assert fig2["shoreline_gain"] == pytest.approx(2.0)
        assert fig2["bw_to_compute_potential"] == pytest.approx(2.0)
        assert fig2["bw_to_compute_realized"] == pytest.approx(2.0, rel=0.01)

    def test_power_density_preserved(self):
        fig2 = fig2_deployment_comparison()
        assert fig2["power_density_ratio"] == pytest.approx(1.0)

    def test_split_validation(self):
        with pytest.raises(SpecError):
            fig2_deployment_comparison(split=0)


class TestFig3Builders:
    def test_panel_gpu_orders(self):
        assert [g.name for g in FIG3A_GPUS] == [
            "H100", "Lite", "Lite+NetBW", "Lite+NetBW+FLOPS",
        ]
        assert [g.name for g in FIG3B_GPUS] == [
            "H100", "Lite", "Lite+MemBW", "Lite+MemBW+NetBW",
        ]

    def test_series_normalized_with_raw(self):
        series = fig3a_prefill_series()
        models = [k for k in series if k != "__raw__"]
        assert models == ["Llama3-70B", "GPT3-175B", "Llama3-405B"]
        for model in models:
            assert series[model]["H100"] == pytest.approx(1.0)
            raw = series["__raw__"][model]["H100"]
            assert raw > 0

    def test_decode_series_shape(self):
        series = fig3b_decode_series()
        for model in ("Llama3-70B", "GPT3-175B", "Llama3-405B"):
            assert set(series[model]) == {"H100", "Lite", "Lite+MemBW", "Lite+MemBW+NetBW"}


class TestReport:
    def test_full_report_builds(self):
        text = experiment_report()
        for marker in ("Table 1", "Figure 1", "Figure 2", "Figure 3a", "Figure 3b", "Section 2", "Section 3"):
            assert marker in text
