"""Table rendering and Table 1 regeneration tests."""

from __future__ import annotations

import pytest

from repro.analysis.tables import format_table, render_fig3_panel, render_table1, table1_rows
from repro.errors import SpecError


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["col", "x"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("col")
        assert len(lines) == 4

    def test_title(self):
        text = format_table(["a"], [[1]], title="T")
        assert text.splitlines()[0] == "T"

    def test_row_width_mismatch(self):
        with pytest.raises(SpecError):
            format_table(["a", "b"], [[1]])

    def test_empty_headers(self):
        with pytest.raises(SpecError):
            format_table([], [])

    def test_float_formatting(self):
        text = format_table(["x"], [[112.5]])
        assert "112.5" in text


class TestTable1:
    def test_rows_verbatim(self):
        rows = table1_rows()
        assert len(rows) == 6
        assert rows[0] == {
            "GPU type": "H100",
            "TFLOPS": 2000,
            "Cap. GB": 80,
            "Mem BW GB/s": 3352,
            "Net BW GB/s": 450.0,
            "#Max GPUs": 8,
        }
        lite = rows[1]
        assert lite["Net BW GB/s"] == 112.5

    def test_render_contains_all_types(self):
        text = render_table1()
        for name in ("H100", "Lite+NetBW+FLOPS", "Lite+MemBW+NetBW"):
            assert name in text
        assert "112.5" in text


class TestFig3Panel:
    def test_render(self):
        series = {
            "Llama3-70B": {"H100": 1.0, "Lite": 0.9},
            "__raw__": {"Llama3-70B": {"H100": 4.0, "Lite": 3.6}},
        }
        text = render_fig3_panel(series, "Figure 3a")
        assert "Figure 3a" in text
        assert "0.900" in text

    def test_empty_series(self):
        with pytest.raises(SpecError):
            render_fig3_panel({"__raw__": {}}, "t")
