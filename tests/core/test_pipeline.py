"""Pipeline / hybrid parallelism tests."""

from __future__ import annotations

import pytest

from repro.core.inference import DecodeWorkload, Phase, PrefillWorkload
from repro.core.pipeline import (
    HybridParallel,
    pipeline_decode,
    pipeline_prefill,
    search_hybrid_config,
    valid_stage_counts,
)
from repro.core.search import search_best_config
from repro.errors import InfeasibleError, SpecError
from repro.hardware.gpu import H100, LITE, LITE_MEMBW
from repro.workloads.models import LLAMA3_70B, LLAMA3_405B


class TestLayout:
    def test_gpu_count(self):
        layout = HybridParallel(LLAMA3_70B, tensor=8, stages=4)
        assert layout.n_gpus == 32
        assert layout.layers_per_stage == 20

    def test_too_many_stages(self):
        with pytest.raises(InfeasibleError):
            HybridParallel(LLAMA3_70B, tensor=1, stages=81)

    def test_validation(self):
        with pytest.raises(SpecError):
            HybridParallel(LLAMA3_70B, tensor=0, stages=1)

    def test_valid_stage_counts_divide_layers(self):
        counts = valid_stage_counts(LLAMA3_70B, 8)  # 80 layers
        assert counts == [1, 2, 4, 5, 8]


class TestPrefillPipeline:
    def test_single_stage_matches_tp_only(self):
        """stages=1, one microbatch: the pipeline model must reduce to the
        plain TP pass."""
        from repro.core.inference import prefill_pass

        plain = prefill_pass(LLAMA3_70B, H100, 8, PrefillWorkload(4))
        piped = pipeline_prefill(
            LLAMA3_70B, H100, 8, 1, PrefillWorkload(4), microbatches=1
        )
        assert piped.latency == pytest.approx(plain.latency, rel=0.02)

    def test_bubble_fraction_formula(self):
        result = pipeline_prefill(
            LLAMA3_70B, LITE, 8, 4, PrefillWorkload(8), microbatches=8
        )
        assert result.bubble_fraction == pytest.approx(3 / 11)

    def test_more_microbatches_shrink_bubble(self):
        few = pipeline_prefill(LLAMA3_70B, LITE, 8, 4, PrefillWorkload(16), microbatches=4)
        many = pipeline_prefill(LLAMA3_70B, LITE, 8, 4, PrefillWorkload(16), microbatches=16)
        assert many.bubble_fraction < few.bubble_fraction

    def test_pp_shrinks_per_gpu_weights(self):
        """PP splits layers: a model too big for t GPUs fits t x p."""
        result = pipeline_prefill(LLAMA3_405B, LITE, 8, 4, PrefillWorkload(1))
        assert result.fits_memory  # 405 GB over 32 GPUs via 8x4


class TestDecodePipeline:
    def test_single_stage_matches_tp_only(self):
        from repro.core.inference import decode_iteration

        plain = decode_iteration(LLAMA3_70B, H100, 8, DecodeWorkload(32))
        piped = pipeline_decode(LLAMA3_70B, H100, 8, 1, DecodeWorkload(32))
        assert piped.latency == pytest.approx(plain.latency, rel=0.02)

    def test_pp_inflates_tbt(self):
        """Decode is latency-bound: the token crosses every stage, and 3/4
        of the cluster idles per token — TBT grows with stages."""
        tp_only = pipeline_decode(LLAMA3_70B, LITE, 32, 1, DecodeWorkload(64))
        piped = pipeline_decode(LLAMA3_70B, LITE, 8, 4, DecodeWorkload(64))
        assert piped.latency > tp_only.latency

    def test_throughput_view_faster_than_latency_view(self):
        result = pipeline_decode(LLAMA3_70B, LITE, 8, 4, DecodeWorkload(64))
        assert result.throughput_latency < result.latency


class TestHybridSearch:
    def test_never_worse_than_tp_only(self):
        """stages=1 is in the search space, so hybrid >= the paper's sweep."""
        for phase in (Phase.PREFILL, Phase.DECODE):
            tp_only = search_best_config(LLAMA3_70B, LITE, phase).best_tokens_per_s_per_sm
            hybrid = search_hybrid_config(LLAMA3_70B, LITE, phase)
            assert hybrid is not None
            assert hybrid.tokens_per_s_per_sm >= tp_only * 0.999

    def test_pp_recovers_405b_prefill_on_lite(self):
        """The extension finding: TP x PP beats 32-way TP for 405B prefill
        on Lite (all-reduce degree drops 2-4x at an 11% bubble)."""
        tp_only = search_best_config(LLAMA3_405B, LITE, "prefill").best_tokens_per_s_per_sm
        hybrid = search_hybrid_config(LLAMA3_405B, LITE, "prefill")
        assert hybrid.stages > 1
        assert hybrid.tokens_per_s_per_sm > tp_only * 1.05

    def test_pp_does_not_fix_405b_decode(self):
        """Decode TBT is latency-bound, so the hybrid search correctly
        falls back to pure TP for decode."""
        hybrid = search_hybrid_config(LLAMA3_405B, LITE_MEMBW, "decode")
        assert hybrid.stages == 1

    def test_slo_respected(self):
        hybrid = search_hybrid_config(LLAMA3_70B, LITE, "decode")
        assert hybrid.latency <= 0.050
