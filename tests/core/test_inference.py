"""Phase-model tests: TTFT, TBT, memory feasibility, stage breakdowns."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.inference import (
    DecodeWorkload,
    Phase,
    PrefillWorkload,
    decode_iteration,
    prefill_pass,
)
from repro.core.roofline import RooflinePolicy
from repro.errors import SpecError
from repro.hardware.gpu import H100, LITE, LITE_MEMBW
from repro.workloads.models import GPT3_175B, LLAMA3_70B, LLAMA3_405B


class TestWorkloads:
    def test_prefill_tokens(self):
        assert PrefillWorkload(batch=4, prompt_len=1500).tokens == 6000

    def test_decode_cached_tokens(self):
        assert DecodeWorkload(batch=8, context_len=1750).cached_tokens == 14000

    def test_validation(self):
        with pytest.raises(SpecError):
            PrefillWorkload(batch=0)
        with pytest.raises(SpecError):
            DecodeWorkload(batch=1, context_len=0)


class TestPrefill:
    def test_basic_feasible_run(self):
        r = prefill_pass(LLAMA3_70B, H100, 8, PrefillWorkload(4))
        assert r.phase is Phase.PREFILL
        assert r.fits_memory
        assert 0 < r.latency < 1.0
        assert r.tokens_per_s == pytest.approx(6000 / r.latency)

    def test_latency_roughly_linear_in_batch(self):
        """Compute-bound prefill: double the prompts, double the time."""
        r1 = prefill_pass(LLAMA3_70B, H100, 8, PrefillWorkload(2))
        r2 = prefill_pass(LLAMA3_70B, H100, 8, PrefillWorkload(4))
        assert r2.latency == pytest.approx(2 * r1.latency, rel=0.1)

    def test_prefill_is_compute_bound_on_h100(self):
        r = prefill_pass(LLAMA3_70B, H100, 4, PrefillWorkload(8))
        assert r.bound_by() == "compute"

    def test_oom_flagged_not_raised(self):
        r = prefill_pass(LLAMA3_405B, H100, 2, PrefillWorkload(1))
        assert not r.fits_memory

    def test_stage_breakdown_sums_to_one(self):
        r = prefill_pass(LLAMA3_70B, H100, 8, PrefillWorkload(4))
        assert sum(r.breakdown().values()) == pytest.approx(1.0)

    def test_sms_accounting(self):
        r = prefill_pass(LLAMA3_70B, LITE, 16, PrefillWorkload(4))
        assert r.sms == 16 * 33
        assert r.tokens_per_s_per_sm == pytest.approx(r.tokens_per_s / r.sms)


class TestDecode:
    def test_basic_feasible_run(self):
        r = decode_iteration(LLAMA3_70B, H100, 8, DecodeWorkload(32))
        assert r.phase is Phase.DECODE
        assert r.fits_memory
        assert r.latency < 0.05  # within the paper's TBT SLO
        assert r.tokens_per_s == pytest.approx(32 / r.latency)

    def test_decode_memory_bound_at_moderate_batch(self):
        """The paper: decode 'is often memory-bound'."""
        r = decode_iteration(LLAMA3_70B, H100, 2, DecodeWorkload(64))
        assert r.bound_by() == "memory"

    def test_memory_bandwidth_variant_speeds_decode(self):
        base = decode_iteration(LLAMA3_70B, LITE, 8, DecodeWorkload(64))
        fast = decode_iteration(LLAMA3_70B, LITE_MEMBW, 8, DecodeWorkload(64))
        assert fast.latency < base.latency

    def test_latency_grows_with_context(self):
        short = decode_iteration(GPT3_175B, H100, 8, DecodeWorkload(64, context_len=1000))
        long = decode_iteration(GPT3_175B, H100, 8, DecodeWorkload(64, context_len=4000))
        assert long.latency > short.latency

    def test_kv_capacity_flagged(self):
        """GPT-3's MHA cache overflows 4 H100s at big batches."""
        r = decode_iteration(GPT3_175B, H100, 4, DecodeWorkload(200, context_len=1750))
        assert not r.fits_memory

    def test_memory_utilization_bounded(self):
        r = decode_iteration(LLAMA3_70B, H100, 8, DecodeWorkload(16))
        assert 0 < r.memory_utilization < 1

    def test_full_memory_iteration_time_invariant(self):
        """At capacity-filling batch, decode mem time ~ capacity/bandwidth,
        which is identical for H100 and base Lite — so their latencies are
        within 2x of each other (network is the separator)."""
        h = decode_iteration(LLAMA3_70B, H100, 2, DecodeWorkload(280))
        l = decode_iteration(LLAMA3_70B, LITE, 8, DecodeWorkload(280))
        assert h.fits_memory and l.fits_memory
        assert h.memory_utilization > 0.85
        assert l.latency / h.latency < 2.0


class TestPolicyEffects:
    def test_sum_overlap_slower_than_max(self):
        fast = decode_iteration(
            LLAMA3_70B, H100, 8, DecodeWorkload(32), RooflinePolicy(overlap="max")
        )
        slow = decode_iteration(
            LLAMA3_70B, H100, 8, DecodeWorkload(32), RooflinePolicy(overlap="sum")
        )
        assert slow.latency > fast.latency

    def test_lower_mfu_slows_prefill(self):
        fast = prefill_pass(LLAMA3_70B, H100, 8, PrefillWorkload(4), RooflinePolicy(mfu=0.9))
        slow = prefill_pass(LLAMA3_70B, H100, 8, PrefillWorkload(4), RooflinePolicy(mfu=0.5))
        assert slow.latency > fast.latency


class TestProperties:
    @given(batch=st.sampled_from([1, 2, 4, 8, 16, 32, 64]))
    @settings(max_examples=20, deadline=None)
    def test_decode_latency_monotone_in_batch(self, batch):
        a = decode_iteration(LLAMA3_70B, H100, 8, DecodeWorkload(batch))
        b = decode_iteration(LLAMA3_70B, H100, 8, DecodeWorkload(batch * 2))
        assert b.latency >= a.latency

    @given(batch=st.sampled_from([1, 2, 4, 8, 16, 32, 64, 128]))
    @settings(max_examples=20, deadline=None)
    def test_decode_throughput_monotone_in_batch(self, batch):
        """Bigger batches always improve raw decode throughput (until OOM) —
        why the search saturates a constraint."""
        a = decode_iteration(LLAMA3_70B, H100, 8, DecodeWorkload(batch))
        b = decode_iteration(LLAMA3_70B, H100, 8, DecodeWorkload(batch * 2))
        assert b.tokens_per_s >= a.tokens_per_s * 0.99
