"""Stage-accounting tests: FLOPs, bytes and collectives per stage."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.parallelism import TensorParallel
from repro.core.roofline import RooflinePolicy
from repro.core.stages import (
    StageCost,
    decode_stage_costs,
    phase_totals,
    prefill_stage_costs,
)
from repro.errors import SpecError
from repro.workloads.models import GPT3_175B, LLAMA3_70B


POLICY = RooflinePolicy()


class TestStageCost:
    def test_rejects_negative(self):
        with pytest.raises(SpecError):
            StageCost("x", flops=-1, mem_bytes=0)

    def test_rejects_unknown_collective(self):
        with pytest.raises(SpecError):
            StageCost("x", flops=0, mem_bytes=0, comm=(("all_scatter", 10.0),))


class TestPrefill:
    def test_stage_names_match_paper(self):
        """'projection, MLP, and fused FlashAttention' + LM head tail."""
        costs = prefill_stage_costs(TensorParallel(LLAMA3_70B, 8), 4, 1500, POLICY)
        assert [s.name for s in costs.layer_stages] == ["projection", "attention", "mlp"]
        assert [s.name for s in costs.tail_stages] == ["lm_head"]
        assert costs.layers == 80

    def test_two_allreduces_per_layer(self):
        """Megatron tensor parallelism: one per projection, one per MLP."""
        costs = prefill_stage_costs(TensorParallel(LLAMA3_70B, 8), 4, 1500, POLICY)
        ar_count = sum(
            1 for stage in costs.layer_stages for op, _ in stage.comm if op == "all_reduce"
        )
        assert ar_count == 2

    def test_allreduce_size_is_activation_tensor(self):
        batch, prompt = 4, 1500
        costs = prefill_stage_costs(TensorParallel(LLAMA3_70B, 8), batch, prompt, POLICY)
        proj = costs.layer_stages[0]
        (op, size), = proj.comm
        assert op == "all_reduce"
        assert size == batch * prompt * LLAMA3_70B.hidden * POLICY.act_bytes

    def test_total_flops_close_to_2N_per_token(self):
        """Aggregate prefill FLOPs ~ 2 * params * tokens (plus attention)."""
        tp = TensorParallel(LLAMA3_70B, 8)
        batch, prompt = 2, 1500
        costs = prefill_stage_costs(tp, batch, prompt, POLICY)
        totals = phase_totals(costs)
        cluster_flops = totals["flops"] * 8
        dense = 2.0 * LLAMA3_70B.param_count * batch * prompt
        assert cluster_flops == pytest.approx(dense, rel=0.25)
        assert cluster_flops > 0.9 * dense

    def test_causal_discount_halves_attention_flops(self):
        tp = TensorParallel(LLAMA3_70B, 8)
        full = prefill_stage_costs(tp, 1, 1500, RooflinePolicy(causal_discount=1.0))
        half = prefill_stage_costs(tp, 1, 1500, RooflinePolicy(causal_discount=0.5))
        assert half.layer_stages[1].flops == pytest.approx(full.layer_stages[1].flops / 2)

    def test_attention_flops_quadratic_in_prompt(self):
        tp = TensorParallel(LLAMA3_70B, 8)
        short = prefill_stage_costs(tp, 1, 1000, POLICY).layer_stages[1].flops
        long = prefill_stage_costs(tp, 1, 2000, POLICY).layer_stages[1].flops
        assert long == pytest.approx(4 * short)

    def test_rejects_bad_batch(self):
        with pytest.raises(SpecError):
            prefill_stage_costs(TensorParallel(LLAMA3_70B, 8), 0, 1500, POLICY)


class TestDecode:
    def test_attention_reads_whole_cache(self):
        """Decode attention memory should be dominated by the KV read."""
        tp = TensorParallel(LLAMA3_70B, 8)
        batch, context = 64, 1750
        costs = decode_stage_costs(tp, batch, context, POLICY)
        attn = costs.layer_stages[1]
        kv_read = batch * context * 2 * tp.kv_width_per_gpu * POLICY.kv_bytes
        assert attn.mem_bytes >= kv_read
        assert attn.mem_bytes == pytest.approx(kv_read, rel=0.1)

    def test_decode_attention_linear_in_context(self):
        tp = TensorParallel(LLAMA3_70B, 8)
        short = decode_stage_costs(tp, 8, 1000, POLICY).layer_stages[1]
        long = decode_stage_costs(tp, 8, 2000, POLICY).layer_stages[1]
        assert long.flops == pytest.approx(2 * short.flops)

    def test_decode_weights_dominate_mem_at_batch_1(self):
        """At batch 1 the iteration is a weight-read: per-layer memory ~
        layer weight shard."""
        tp = TensorParallel(LLAMA3_70B, 8)
        costs = decode_stage_costs(tp, 1, 1750, POLICY)
        mlp = costs.layer_stages[2]
        weights = tp.mlp_params_per_gpu() * POLICY.weight_bytes
        assert mlp.mem_bytes == pytest.approx(weights, rel=0.01)

    def test_gpt3_attention_heavier_than_llama(self):
        """Per-SM-equal clusters: GPT-3's decode attention reads ~12x more."""
        gpt3 = decode_stage_costs(TensorParallel(GPT3_175B, 8), 32, 1750, POLICY)
        llama = decode_stage_costs(TensorParallel(LLAMA3_70B, 8), 32, 1750, POLICY)
        assert gpt3.layer_stages[1].mem_bytes > 8 * llama.layer_stages[1].mem_bytes

    def test_lm_head_gathers_logits(self):
        costs = decode_stage_costs(TensorParallel(LLAMA3_70B, 8), 16, 1750, POLICY)
        (op, size), = costs.tail_stages[0].comm
        assert op == "all_gather"
        assert size == 16 * LLAMA3_70B.vocab * POLICY.act_bytes


class TestTotals:
    def test_phase_totals_positive(self):
        costs = decode_stage_costs(TensorParallel(LLAMA3_70B, 8), 8, 1750, POLICY)
        totals = phase_totals(costs)
        assert totals["flops"] > 0
        assert totals["mem_bytes"] > 0
        assert totals["comm_logical_bytes"] > 0


class TestProperties:
    @given(batch=st.integers(1, 256), degree=st.sampled_from([1, 2, 4, 8]))
    @settings(max_examples=40, deadline=None)
    def test_flops_scale_linearly_with_batch(self, batch, degree):
        tp = TensorParallel(LLAMA3_70B, degree)
        one = decode_stage_costs(tp, 1, 1750, POLICY)
        many = decode_stage_costs(tp, batch, 1750, POLICY)
        for s1, sb in zip(one.layer_stages, many.layer_stages):
            assert sb.flops == pytest.approx(batch * s1.flops, rel=1e-9)

    @given(degree=st.sampled_from([1, 2, 4, 8, 16, 32]))
    @settings(max_examples=20, deadline=None)
    def test_per_gpu_flops_shrink_with_degree(self, degree):
        tp = TensorParallel(LLAMA3_70B, degree)
        costs = prefill_stage_costs(tp, 1, 1500, POLICY)
        total = phase_totals(costs)["flops"] * degree
        base = phase_totals(prefill_stage_costs(TensorParallel(LLAMA3_70B, 1), 1, 1500, POLICY))["flops"]
        assert total == pytest.approx(base, rel=1e-6)
