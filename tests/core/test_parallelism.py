"""Tensor-parallel sharding tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.parallelism import KVPlacement, TensorParallel, valid_tp_degrees
from repro.errors import InfeasibleError, SpecError
from repro.workloads.models import GPT3_175B, LLAMA3_70B, LLAMA3_405B


class TestValidity:
    def test_degree_must_divide_heads(self):
        with pytest.raises(InfeasibleError):
            TensorParallel(LLAMA3_70B, 3)

    def test_valid_degrees_h100(self):
        assert valid_tp_degrees(LLAMA3_70B, 8) == [1, 2, 4, 8]

    def test_valid_degrees_lite_respect_domain(self):
        degrees = valid_tp_degrees(LLAMA3_70B, 32, scaleup_domain=4)
        assert degrees == [1, 2, 4, 8, 16, 32]

    def test_gpt3_degrees_include_non_powers(self):
        degrees = valid_tp_degrees(GPT3_175B, 32, scaleup_domain=4)
        assert 12 in degrees and 24 in degrees
        assert 6 not in degrees  # > domain but not a multiple of 4

    def test_degrees_below_domain_unconstrained(self):
        degrees = valid_tp_degrees(GPT3_175B, 8, scaleup_domain=8)
        assert degrees == [1, 2, 3, 4, 6, 8]


class TestShards:
    def test_heads_per_gpu(self):
        assert TensorParallel(LLAMA3_70B, 8).heads_per_gpu == 8

    def test_kv_replication_kicks_in_above_kv_heads(self):
        assert TensorParallel(LLAMA3_70B, 8).kv_replication == 1
        assert TensorParallel(LLAMA3_70B, 32).kv_replication == 4

    def test_mha_never_replicates(self):
        assert TensorParallel(GPT3_175B, 32).kv_replication == 1

    def test_weight_shards_sum_to_model(self):
        """Sharded weights across ranks must reconstruct the model
        (SHARDED placement: exact partition)."""
        for degree in (1, 2, 4, 8):
            tp = TensorParallel(LLAMA3_70B, degree)
            total = tp.weight_bytes_per_gpu(1.0) * degree
            assert total == pytest.approx(LLAMA3_70B.weight_bytes(1.0), rel=1e-6)

    def test_replicated_weights_exceed_model_at_high_degree(self):
        tp = TensorParallel(LLAMA3_70B, 32, KVPlacement.REPLICATED)
        total = tp.weight_bytes_per_gpu(1.0) * 32
        assert total > LLAMA3_70B.weight_bytes(1.0)


class TestKVCache:
    def test_sharded_partition_exact(self):
        tp = TensorParallel(LLAMA3_70B, 32, KVPlacement.SHARDED)
        per_gpu = tp.kv_bytes_per_token_per_gpu()
        assert per_gpu * 32 == pytest.approx(LLAMA3_70B.kv_bytes_per_token())

    def test_replicated_inflates_aggregate(self):
        tp = TensorParallel(LLAMA3_70B, 32, KVPlacement.REPLICATED)
        per_gpu = tp.kv_bytes_per_token_per_gpu()
        assert per_gpu * 32 == pytest.approx(4 * LLAMA3_70B.kv_bytes_per_token())

    def test_placements_agree_below_kv_heads(self):
        sharded = TensorParallel(LLAMA3_70B, 4, KVPlacement.SHARDED)
        replicated = TensorParallel(LLAMA3_70B, 4, KVPlacement.REPLICATED)
        assert sharded.kv_bytes_per_token_per_gpu() == pytest.approx(
            replicated.kv_bytes_per_token_per_gpu()
        )

    def test_max_cached_tokens_positive_when_weights_fit(self):
        tp = TensorParallel(LLAMA3_70B, 8)
        assert tp.max_cached_tokens(20e9) > 0

    def test_max_cached_tokens_zero_when_weights_do_not_fit(self):
        tp = TensorParallel(LLAMA3_405B, 8)
        assert tp.max_cached_tokens(20e9) == 0

    def test_fits(self):
        assert TensorParallel(LLAMA3_70B, 8).fits(20e9)
        assert not TensorParallel(LLAMA3_405B, 2).fits(80e9)

    def test_reserve_fraction_reduces_tokens(self):
        tp = TensorParallel(LLAMA3_70B, 8)
        plenty = tp.max_cached_tokens(80e9, reserve_fraction=0.0)
        reserved = tp.max_cached_tokens(80e9, reserve_fraction=0.3)
        assert reserved < plenty

    def test_validation(self):
        tp = TensorParallel(LLAMA3_70B, 8)
        with pytest.raises(SpecError):
            tp.kv_bytes_per_gpu(-1)
        with pytest.raises(SpecError):
            tp.max_cached_tokens(0.0)
        with pytest.raises(SpecError):
            TensorParallel(LLAMA3_70B, 0)


class TestPaperConfiguration:
    def test_405b_needs_all_32_lite_gpus(self):
        """405 GB FP8 weights: only the full 32-GPU Lite cluster fits."""
        assert not TensorParallel(LLAMA3_405B, 16).fits(20e9)
        assert TensorParallel(LLAMA3_405B, 32).fits(20e9)

    def test_gpt3_mha_kv_pressure(self):
        """GPT-3's per-token KV per GPU is ~12x Llama3-70B's at the same
        degree — the Figure 3b 'memory access intensity' driver."""
        gpt3 = TensorParallel(GPT3_175B, 8).kv_bytes_per_token_per_gpu()
        llama = TensorParallel(LLAMA3_70B, 8).kv_bytes_per_token_per_gpu()
        assert gpt3 / llama > 10


class TestProperties:
    @given(degree=st.sampled_from([1, 2, 4, 8, 16, 32]))
    @settings(max_examples=20, deadline=None)
    def test_weight_shard_decreasing_in_degree(self, degree):
        tp = TensorParallel(LLAMA3_70B, degree)
        if degree > 1:
            smaller = TensorParallel(LLAMA3_70B, degree // 2)
            assert tp.weight_bytes_per_gpu() < smaller.weight_bytes_per_gpu()

    @given(tokens=st.integers(0, 1_000_000), degree=st.sampled_from([2, 8, 32]))
    @settings(max_examples=40, deadline=None)
    def test_kv_linear_in_tokens(self, tokens, degree):
        tp = TensorParallel(LLAMA3_70B, degree)
        assert tp.kv_bytes_per_gpu(tokens) == pytest.approx(
            tokens * tp.kv_bytes_per_token_per_gpu()
        )
