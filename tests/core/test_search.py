"""Configuration-search tests — the Section 4 sweep semantics."""

from __future__ import annotations

import pytest

from repro.core.inference import Phase
from repro.core.roofline import RooflinePolicy
from repro.core.search import (
    SearchConstraints,
    search_best_config,
    search_many,
    _batch_grid,
)
from repro.errors import SpecError
from repro.hardware.gpu import H100, LITE
from repro.workloads.models import GPT3_175B, LLAMA3_8B, LLAMA3_70B, LLAMA3_405B


class TestConstraints:
    def test_paper_defaults(self):
        c = SearchConstraints()
        assert c.ttft_slo == 1.0
        assert c.tbt_slo == 0.050
        assert c.prompt_len == 1500

    def test_validation(self):
        with pytest.raises(SpecError):
            SearchConstraints(ttft_slo=0.0)
        with pytest.raises(SpecError):
            SearchConstraints(max_batch=0)


class TestBatchGrid:
    def test_grid_starts_at_one_and_caps(self):
        grid = _batch_grid(100)
        assert grid[0] == 1
        assert max(grid) <= 100

    def test_grid_strictly_increasing(self):
        grid = _batch_grid(512)
        assert all(b < a for b, a in zip(grid, grid[1:]))


class TestSearch:
    def test_finds_feasible_decode_config(self):
        result = search_best_config(LLAMA3_70B, H100, "decode")
        assert result.feasible
        best = result.best
        assert best.result.latency <= 0.050
        assert best.result.fits_memory

    def test_finds_feasible_prefill_config(self):
        result = search_best_config(LLAMA3_70B, H100, "prefill")
        assert result.feasible
        assert result.best.result.latency <= 1.0

    def test_every_frontier_point_evaluated_consistently(self):
        result = search_best_config(LLAMA3_70B, H100, "decode")
        for point in result.frontier:
            if point.feasible:
                assert point.tokens_per_s_per_sm <= result.best_tokens_per_s_per_sm + 1e-9

    def test_accepts_phase_enum_and_string(self):
        a = search_best_config(LLAMA3_8B, H100, Phase.DECODE)
        b = search_best_config(LLAMA3_8B, H100, "decode")
        assert a.best.tokens_per_s_per_sm == b.best.tokens_per_s_per_sm

    def test_may_prefer_fewer_gpus_than_max(self):
        """Paper: 'the search may return that running a model with less GPUs
        than the maximum yields better throughput per SM' — true for
        Llama3-70B decode on H100 (weights fit 2 GPUs)."""
        result = search_best_config(LLAMA3_70B, H100, "decode")
        assert result.best.n_gpus < H100.max_cluster

    def test_405b_forces_full_lite_cluster(self):
        result = search_best_config(LLAMA3_405B, LITE, "decode")
        assert result.feasible
        assert result.best.n_gpus == 32

    def test_infeasible_when_model_too_big(self):
        """405B cannot run on a single H100 at any batch."""
        result = search_best_config(LLAMA3_405B, H100, "decode", max_gpus=1)
        assert not result.feasible
        assert result.best_tokens_per_s_per_sm == 0.0

    def test_tight_slo_never_improves_optimum(self):
        """A tighter TBT can shift the winner (often to more GPUs) but the
        best efficiency cannot rise, and the winner must meet the SLO."""
        loose = search_best_config(LLAMA3_70B, H100, "decode", SearchConstraints(tbt_slo=0.050))
        tight = search_best_config(LLAMA3_70B, H100, "decode", SearchConstraints(tbt_slo=0.010))
        assert tight.best.result.latency <= 0.010
        assert tight.best_tokens_per_s_per_sm <= loose.best_tokens_per_s_per_sm + 1e-9

    def test_describe(self):
        result = search_best_config(LLAMA3_8B, H100, "decode")
        assert "tok/s/SM" in result.describe()
        infeasible = search_best_config(LLAMA3_405B, H100, "decode", max_gpus=1)
        assert "infeasible" in infeasible.describe()


class TestSearchMany:
    def test_matrix_shape(self):
        results = search_many([LLAMA3_8B, LLAMA3_70B], [H100, LITE], "decode")
        assert set(results) == {
            ("Llama3-8B", "H100"),
            ("Llama3-8B", "Lite"),
            ("Llama3-70B", "H100"),
            ("Llama3-70B", "Lite"),
        }
        assert all(r.feasible for r in results.values())


class TestSearchPhysics:
    def test_decode_best_batch_saturates_a_constraint(self):
        """tokens/s/SM is monotone in batch, so the winner sits at the
        memory or TBT boundary: batch+1 must be infeasible."""
        from repro.core.search import _evaluate

        result = search_best_config(LLAMA3_70B, H100, "decode")
        best = result.best
        bumped = _evaluate(
            Phase.DECODE, LLAMA3_70B, H100, best.n_gpus, best.batch + 1,
            SearchConstraints(), RooflinePolicy(),
        )
        assert not bumped.feasible

    def test_gpt3_decode_capacity_spread(self):
        """GPT-3 decode: H100's best config uses large aggregate memory —
        its batch at 8 GPUs far exceeds what 4 GPUs can hold."""
        at8 = search_best_config(GPT3_175B, H100, "decode")
        at4 = search_best_config(GPT3_175B, H100, "decode", max_gpus=4)
        assert at8.best.batch > 2 * at4.best.batch


class TestParallelSearchMany:
    def test_workers_match_serial(self):
        serial = search_many([LLAMA3_8B], [H100, LITE], "decode")
        parallel = search_many([LLAMA3_8B], [H100, LITE], "decode", workers=2)
        assert set(serial) == set(parallel)
        for pair, result in serial.items():
            other = parallel[pair]
            assert result.best_tokens_per_s_per_sm == other.best_tokens_per_s_per_sm
            assert result.frontier == other.frontier
