"""Metric-utility tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.inference import DecodeWorkload, decode_iteration
from repro.core.metrics import (
    efficiency_summary,
    normalize_to_baseline,
    pareto_front,
    speedup,
    tokens_per_s_per_sm,
)
from repro.errors import SpecError
from repro.hardware.gpu import H100
from repro.workloads.models import LLAMA3_70B


class TestNormalization:
    def test_baseline_reads_one(self):
        norm = normalize_to_baseline({"H100": 4.0, "Lite": 3.0}, "H100")
        assert norm == {"H100": 1.0, "Lite": 0.75}

    def test_missing_baseline(self):
        with pytest.raises(SpecError):
            normalize_to_baseline({"a": 1.0}, "b")

    def test_zero_baseline(self):
        with pytest.raises(SpecError):
            normalize_to_baseline({"a": 0.0, "b": 1.0}, "a")


class TestPareto:
    def test_dominated_point_removed(self):
        assert pareto_front([(1, 1), (2, 3), (3, 2)]) == [(1, 1), (2, 3)]

    def test_empty(self):
        assert pareto_front([]) == []

    def test_single_point(self):
        assert pareto_front([(5, 5)]) == [(5, 5)]

    def test_orientation_min_min(self):
        front = pareto_front([(1, 3), (2, 2), (3, 1), (3, 3)], maximize_y=False)
        assert front == [(1, 3), (2, 2), (3, 1)]

    @given(
        points=st.lists(
            st.tuples(st.floats(0, 100), st.floats(0, 100)), min_size=1, max_size=50
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_front_is_mutually_nondominated(self, points):
        front = pareto_front(points)
        for i, (x1, y1) in enumerate(front):
            for j, (x2, y2) in enumerate(front):
                if i != j:
                    dominates = x2 <= x1 and y2 >= y1 and (x2 < x1 or y2 > y1)
                    assert not dominates


class TestSummary:
    def test_summary_over_results(self):
        results = [
            decode_iteration(LLAMA3_70B, H100, 2, DecodeWorkload(b)) for b in (8, 16, 32)
        ]
        summary = efficiency_summary(results)
        assert summary["count"] == 3
        assert summary["min"] <= summary["median"] <= summary["max"]

    def test_empty_summary(self):
        assert efficiency_summary([]) == {"count": 0}

    def test_tokens_per_s_per_sm_helper(self):
        r = decode_iteration(LLAMA3_70B, H100, 2, DecodeWorkload(8))
        assert tokens_per_s_per_sm(r) == r.tokens_per_s_per_sm


class TestSpeedup:
    def test_ratio(self):
        assert speedup(3.0, 2.0) == 1.5

    def test_zero_old_rejected(self):
        with pytest.raises(SpecError):
            speedup(1.0, 0.0)
