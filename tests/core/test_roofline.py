"""Roofline engine tests: overlap composition and collective charging."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.roofline import (
    CommModel,
    RooflinePolicy,
    StageTime,
    compose_stage_time,
    tp_allgather_time,
    tp_allreduce_time,
)
from repro.errors import SpecError
from repro.hardware.gpu import H100, LITE


class TestPolicy:
    def test_defaults_are_paper(self):
        policy = RooflinePolicy.paper()
        assert policy.comm_model is CommModel.HIERARCHICAL
        assert policy.overlap == "max"
        assert policy.weight_bytes == 1.0  # FP8
        assert policy.act_bytes == 2.0  # FP16 on the wire

    def test_presets(self):
        assert RooflinePolicy.pessimistic().comm_model is CommModel.FLAT_RING
        assert RooflinePolicy.optimistic().comm_model is CommModel.SHARDED

    def test_validation(self):
        with pytest.raises(SpecError):
            RooflinePolicy(mfu=0.0)
        with pytest.raises(SpecError):
            RooflinePolicy(overlap="parallel")
        with pytest.raises(SpecError):
            RooflinePolicy(alpha=-1.0)
        with pytest.raises(SpecError):
            RooflinePolicy(causal_discount=0.0)


class TestCompose:
    def test_max_overlap(self):
        st_ = compose_stage_time("s", 3.0, 2.0, 1.0, RooflinePolicy(overlap="max"))
        assert st_.total == 3.0
        assert st_.bound == "compute"

    def test_sum_overlap(self):
        st_ = compose_stage_time("s", 3.0, 2.0, 1.0, RooflinePolicy(overlap="sum"))
        assert st_.total == 6.0

    def test_bound_classification(self):
        assert compose_stage_time("s", 1, 5, 2, RooflinePolicy()).bound == "memory"
        assert compose_stage_time("s", 1, 2, 5, RooflinePolicy()).bound == "network"

    def test_rejects_negative_components(self):
        with pytest.raises(SpecError):
            compose_stage_time("s", -1.0, 0.0, 0.0, RooflinePolicy())


class TestAllReduceCharging:
    def test_degree_one_free(self):
        assert tp_allreduce_time(1e9, 1, H100, RooflinePolicy()) == 0.0

    def test_h100_domain_is_flat_ring(self):
        """H100 at t <= 8 is a plain NVLink ring under every model."""
        policy = RooflinePolicy(alpha=0.0)
        size = 16.8e6
        expected = 2 * (7 / 8) * size / (H100.net_bandwidth * policy.net_efficiency)
        hier = tp_allreduce_time(size, 8, H100, policy)
        ring = tp_allreduce_time(size, 8, H100, RooflinePolicy(alpha=0.0, comm_model=CommModel.FLAT_RING))
        assert hier == pytest.approx(expected)
        assert ring == pytest.approx(expected)

    def test_charging_model_ordering_for_lite32(self):
        """SHARDED <= HIERARCHICAL <= FLAT_RING at high degree."""
        size = 16.8e6
        times = {
            model: tp_allreduce_time(size, 32, LITE, RooflinePolicy(alpha=0.0, comm_model=model))
            for model in CommModel
        }
        assert times[CommModel.SHARDED] < times[CommModel.HIERARCHICAL]
        assert times[CommModel.HIERARCHICAL] < times[CommModel.FLAT_RING]

    def test_hierarchical_uses_mesh_inside_group(self):
        """At t = 4 a Lite group runs on its 3x mesh links."""
        policy = RooflinePolicy(alpha=0.0)
        size = 1e6
        t = tp_allreduce_time(size, 4, LITE, policy)
        expected = 2 * (3 / 4) * size / (LITE.mesh_bandwidth * policy.net_efficiency)
        assert t == pytest.approx(expected)

    def test_alpha_adds_per_hop_latency(self):
        lo = tp_allreduce_time(1e6, 8, H100, RooflinePolicy(alpha=0.0))
        hi = tp_allreduce_time(1e6, 8, H100, RooflinePolicy(alpha=1e-6))
        assert hi == pytest.approx(lo + 14e-6)

    def test_lite_penalty_vs_h100_hierarchical(self):
        """Lite at t=32 pays ~2x H100's t=8 all-reduce (not 4.4x as in a
        flat ring) thanks to the group mesh — the modeling choice that
        reconciles Figure 3a and 3b (DESIGN.md §4)."""
        size = 16.8e6
        policy = RooflinePolicy(alpha=0.0)
        h100 = tp_allreduce_time(size, 8, H100, policy)
        lite = tp_allreduce_time(size, 32, LITE, policy)
        assert 1.5 < lite / h100 < 3.0

    def test_rejects_negative_size(self):
        with pytest.raises(SpecError):
            tp_allreduce_time(-1.0, 8, H100, RooflinePolicy())


class TestAllGather:
    def test_allgather_cheaper_than_allreduce(self):
        policy = RooflinePolicy()
        ag = tp_allgather_time(1e6, 8, H100, policy)
        ar = tp_allreduce_time(1e6, 8, H100, policy)
        assert ag < ar

    def test_degree_one_free(self):
        assert tp_allgather_time(1e9, 1, H100, RooflinePolicy()) == 0.0

    def test_all_models_positive(self):
        for model in CommModel:
            policy = RooflinePolicy(comm_model=model)
            assert tp_allgather_time(1e6, 32, LITE, policy) > 0


class TestProperties:
    @given(
        size=st.floats(1e3, 1e9),
        degree=st.sampled_from([2, 4, 8, 16, 32]),
        model=st.sampled_from(list(CommModel)),
    )
    @settings(max_examples=60, deadline=None)
    def test_times_positive_and_monotone_in_size(self, size, degree, model):
        policy = RooflinePolicy(comm_model=model)
        t1 = tp_allreduce_time(size, degree, LITE, policy)
        t2 = tp_allreduce_time(size * 2, degree, LITE, policy)
        assert 0 < t1 < t2

    @given(size=st.floats(1e3, 1e8), degree=st.sampled_from([2, 4, 8]))
    @settings(max_examples=40, deadline=None)
    def test_more_net_bandwidth_never_hurts(self, size, degree):
        from repro.hardware.gpu import LITE_NETBW

        policy = RooflinePolicy()
        slow = tp_allreduce_time(size, degree, LITE, policy)
        fast = tp_allreduce_time(size, degree, LITE_NETBW, policy)
        assert fast <= slow + 1e-15
