"""Chunked-prefill (SARATHI-style) model tests."""

from __future__ import annotations

import pytest

from repro.core.chunked import (
    MixedIteration,
    chunk_for_tbt,
    chunked_vs_split_throughput,
    mixed_iteration_time,
)
from repro.core.inference import DecodeWorkload, decode_iteration
from repro.errors import SpecError
from repro.hardware.gpu import H100, LITE, LITE_MEMBW
from repro.workloads.models import LLAMA3_8B, LLAMA3_70B


class TestMixedIteration:
    def test_validation(self):
        with pytest.raises(SpecError):
            MixedIteration(decode_batch=0, context_len=1750, chunk=0)
        with pytest.raises(SpecError):
            MixedIteration(decode_batch=-1, context_len=1750, chunk=8)
        with pytest.raises(SpecError):
            MixedIteration(decode_batch=1, context_len=0, chunk=8)

    def test_pure_decode_matches_decode_model(self):
        """chunk=0 must reduce to the plain decode iteration."""
        mixed = mixed_iteration_time(
            LLAMA3_70B, H100, 2, MixedIteration(decode_batch=64, context_len=1750, chunk=0)
        )
        plain = decode_iteration(LLAMA3_70B, H100, 2, DecodeWorkload(64, 1750))
        assert mixed.tbt == pytest.approx(plain.latency, rel=0.02)

    def test_chunk_inflates_tbt(self):
        base = mixed_iteration_time(
            LLAMA3_70B, H100, 2, MixedIteration(64, 1750, 0)
        ).tbt
        chunked = mixed_iteration_time(
            LLAMA3_70B, H100, 2, MixedIteration(64, 1750, 2048)
        ).tbt
        assert chunked > base

    def test_chunk_rides_in_memory_shadow(self):
        """A modest chunk adds prefill throughput at small TBT cost —
        the piggybacking effect (decode is memory-bound, the chunk's GEMMs
        are compute that overlaps)."""
        base = mixed_iteration_time(LLAMA3_70B, H100, 2, MixedIteration(64, 1750, 0))
        small = mixed_iteration_time(LLAMA3_70B, H100, 2, MixedIteration(64, 1750, 256))
        assert small.prefill_tokens_per_s > 0
        assert small.tbt < base.tbt * 1.25

    def test_throughputs_accounted(self):
        result = mixed_iteration_time(LLAMA3_8B, H100, 1, MixedIteration(32, 1000, 512))
        assert result.total_tokens_per_s == pytest.approx(
            result.decode_tokens_per_s + result.prefill_tokens_per_s
        )


class TestChunkForTBT:
    def test_chunk_respects_slo(self):
        chunk = chunk_for_tbt(LLAMA3_70B, H100, 2, decode_batch=64, context_len=1750)
        assert chunk > 0
        result = mixed_iteration_time(LLAMA3_70B, H100, 2, MixedIteration(64, 1750, chunk))
        assert result.tbt <= 0.050 + 1e-6

    def test_zero_when_decode_already_misses(self):
        chunk = chunk_for_tbt(
            LLAMA3_70B, H100, 2, decode_batch=64, context_len=1750, tbt_slo=0.001
        )
        assert chunk == 0

    def test_tighter_slo_smaller_chunk(self):
        loose = chunk_for_tbt(LLAMA3_70B, H100, 2, 64, 1750, tbt_slo=0.050)
        tight = chunk_for_tbt(LLAMA3_70B, H100, 2, 64, 1750, tbt_slo=0.035)
        assert tight <= loose

    def test_validation(self):
        with pytest.raises(SpecError):
            chunk_for_tbt(LLAMA3_70B, H100, 2, 64, 1750, tbt_slo=0.0)


class TestChunkedVsSplit:
    def test_comparison_structure(self):
        result = chunked_vs_split_throughput(LLAMA3_70B, H100, 2, decode_batch=64)
        assert result["chunk"] > 0
        assert result["piggyback_prefill_tokens_per_s"] > 0
        assert result["dedicated_prefill_tokens_per_s"] > 0
        assert result["tbt"] <= 0.050 + 1e-6

    def test_dedicated_pool_outruns_piggyback(self):
        """A dedicated prefill pool always moves more prompt tokens than
        the SLO-capped piggyback — the reason phase-splitting exists."""
        result = chunked_vs_split_throughput(LLAMA3_70B, H100, 2, decode_batch=64)
        assert result["dedicated_prefill_tokens_per_s"] > result["piggyback_prefill_tokens_per_s"]

    def test_membw_lite_piggybacks_more(self):
        """Lite+MemBW finishes decode iterations faster, leaving more SLO
        headroom for chunks than plain Lite at the same decode batch."""
        plain = chunked_vs_split_throughput(LLAMA3_70B, LITE, 8, decode_batch=64)
        membw = chunked_vs_split_throughput(LLAMA3_70B, LITE_MEMBW, 8, decode_batch=64)
        assert membw["piggyback_prefill_tokens_per_s"] > plain["piggyback_prefill_tokens_per_s"]
