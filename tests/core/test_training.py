"""Distributed-training model tests."""

from __future__ import annotations

import pytest

from repro.core.training import (
    TrainingConfig,
    equivalent_lite_training,
    train_step,
)
from repro.errors import InfeasibleError, SpecError
from repro.hardware.gpu import H100, LITE, LITE_NETBW
from repro.workloads.models import LLAMA3_8B, LLAMA3_70B


class TestConfig:
    def test_defaults_and_derived(self):
        cfg = TrainingConfig(data_parallel=8, tensor=4, micro_batch=2)
        assert cfg.n_gpus == 32
        assert cfg.global_batch == 16
        assert cfg.microbatches_per_rank == 1
        assert cfg.tokens_per_step == 16 * 4096

    def test_gradient_accumulation(self):
        cfg = TrainingConfig(data_parallel=4, tensor=2, micro_batch=1, global_batch=32)
        assert cfg.microbatches_per_rank == 8

    def test_validation(self):
        with pytest.raises(SpecError):
            TrainingConfig(data_parallel=0, tensor=1)
        with pytest.raises(SpecError):
            TrainingConfig(data_parallel=2, tensor=1, micro_batch=2, global_batch=5)
        with pytest.raises(SpecError):
            TrainingConfig(data_parallel=1, tensor=1, zero_stage=4)


class TestTrainStep:
    def test_basic_run(self):
        cfg = TrainingConfig(data_parallel=8, tensor=4, micro_batch=1)
        result = train_step(LLAMA3_8B, H100, cfg)
        assert result.fits_memory
        assert 0.0 < result.mfu < 1.0
        assert result.tokens_per_s > 0

    def test_zero_sharding_shrinks_memory(self):
        base = TrainingConfig(data_parallel=16, tensor=4, micro_batch=1, zero_stage=0)
        sharded = TrainingConfig(data_parallel=16, tensor=4, micro_batch=1, zero_stage=1)
        m0 = train_step(LLAMA3_70B, H100, base).mem_per_gpu
        m1 = train_step(LLAMA3_70B, H100, sharded).mem_per_gpu
        assert m1 < m0

    def test_70b_needs_sharding_on_h100(self):
        """16 B/param * 70e9 / tp8 = 140 GB: without ZeRO it cannot fit."""
        cfg = TrainingConfig(data_parallel=8, tensor=8, micro_batch=1, zero_stage=0)
        assert not train_step(LLAMA3_70B, H100, cfg).fits_memory
        cfg1 = TrainingConfig(data_parallel=8, tensor=8, micro_batch=1, zero_stage=1)
        assert train_step(LLAMA3_70B, H100, cfg1).fits_memory

    def test_longer_sequences_raise_step_time(self):
        short = TrainingConfig(data_parallel=4, tensor=4, micro_batch=1, seq_len=2048)
        long = TrainingConfig(data_parallel=4, tensor=4, micro_batch=1, seq_len=8192)
        t_short = train_step(LLAMA3_8B, H100, short).step_time
        t_long = train_step(LLAMA3_8B, H100, long).step_time
        assert t_long > t_short

    def test_mfu_realistic_band(self):
        """A healthy small-scale H100 job lands in the 0.3-0.7 MFU band."""
        cfg = TrainingConfig(data_parallel=8, tensor=8, micro_batch=1, global_batch=64)
        result = train_step(LLAMA3_70B, H100, cfg)
        assert 0.3 < result.mfu < 0.7


class TestLiteTraining:
    def test_equivalent_layout(self):
        h100 = TrainingConfig(data_parallel=8, tensor=8, micro_batch=1)
        lite = equivalent_lite_training(LLAMA3_70B, h100, LITE)
        assert lite.tensor == 32
        assert lite.n_gpus == 4 * h100.n_gpus
        assert lite.global_batch == h100.global_batch

    def test_head_divisibility_enforced(self):
        h100 = TrainingConfig(data_parallel=1, tensor=32, micro_batch=1)
        with pytest.raises(InfeasibleError):
            equivalent_lite_training(LLAMA3_70B, h100, LITE)  # tp 128 > 64 heads ok? 128 divides... use bigger
        # (Llama3-70B has 64 heads; tp 128 is invalid.)

    def test_lite_training_pays_collective_tax(self):
        """The extension finding: training (long sequences, big activation
        all-reduces) is where high-degree Lite TP hurts most."""
        h100_cfg = TrainingConfig(data_parallel=8, tensor=8, micro_batch=1, global_batch=64)
        lite_cfg = equivalent_lite_training(LLAMA3_70B, h100_cfg, LITE)
        h100 = train_step(LLAMA3_70B, H100, h100_cfg)
        lite = train_step(LLAMA3_70B, LITE, lite_cfg)
        assert lite.tokens_per_s_per_sm < 0.8 * h100.tokens_per_s_per_sm

    def test_network_bandwidth_recovers_some(self):
        h100_cfg = TrainingConfig(data_parallel=8, tensor=8, micro_batch=1, global_batch=64)
        lite_cfg = equivalent_lite_training(LLAMA3_70B, h100_cfg, LITE)
        lite = train_step(LLAMA3_70B, LITE, lite_cfg)
        lite_net = train_step(LLAMA3_70B, LITE_NETBW, lite_cfg)
        assert lite_net.tokens_per_s_per_sm > lite.tokens_per_s_per_sm
