"""Wafer geometry and economics tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SpecError
from repro.hardware.wafer import WaferSpec, dies_per_wafer, good_dies_per_wafer
from repro.hardware.yieldmodel import YieldModel


class TestDiesPerWafer:
    def test_h100_class_die_count(self):
        """~60-65 gross dies for a reticle-class die on 300 mm."""
        assert 55 <= dies_per_wafer(814.0) <= 70

    def test_small_dies_beat_linear_scaling(self):
        """Edge loss shrinks with die size: 4x smaller dies -> >4x the dies."""
        big = dies_per_wafer(814.0)
        small = dies_per_wafer(814.0 / 4)
        assert small > 4 * big

    def test_larger_wafer_more_dies(self):
        assert dies_per_wafer(400.0, 450.0) > dies_per_wafer(400.0, 300.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(SpecError):
            dies_per_wafer(0.0)
        with pytest.raises(SpecError):
            dies_per_wafer(100.0, 0.0)


class TestGoodDies:
    def test_good_dies_below_gross(self):
        ym = YieldModel.murphy()
        assert good_dies_per_wafer(814.0, ym) < dies_per_wafer(814.0)

    def test_good_dies_scale_with_yield(self):
        perfect = YieldModel.murphy(0.0)
        lossy = YieldModel.murphy(0.3)
        assert good_dies_per_wafer(400.0, perfect) > good_dies_per_wafer(400.0, lossy)


class TestWaferSpec:
    def test_cost_per_good_die_at_quarter_area(self):
        """Four quarter dies cost about half of one big die (Section 2)."""
        wafer = WaferSpec()
        ym = YieldModel.murphy()
        big = wafer.cost_per_good_die(814.0, ym)
        four_small = 4 * wafer.cost_per_good_die(814.0 / 4, ym)
        reduction = 1.0 - four_small / big
        assert reduction == pytest.approx(0.5, abs=0.1)

    def test_validation(self):
        with pytest.raises(SpecError):
            WaferSpec(diameter_mm=0.0)
        with pytest.raises(SpecError):
            WaferSpec(cost_usd=-1.0)

    def test_cost_undefined_when_no_good_dies(self):
        wafer = WaferSpec()
        hopeless = YieldModel.poisson(50.0)  # absurd defect density
        with pytest.raises(SpecError):
            wafer.cost_per_good_die(100000.0, hopeless)


class TestProperties:
    @given(area=st.floats(20.0, 2000.0))
    @settings(max_examples=60, deadline=None)
    def test_dpw_between_bounds(self, area):
        """Gross dies bounded by pure area ratio, above area ratio minus edge."""
        import math

        dpw = dies_per_wafer(area)
        upper = math.pi * 150.0**2 / area
        assert 0 <= dpw <= upper

    @given(area=st.floats(20.0, 1000.0), factor=st.floats(1.2, 3.0))
    @settings(max_examples=60, deadline=None)
    def test_dpw_decreasing_in_area(self, area, factor):
        assert dies_per_wafer(area * factor) <= dies_per_wafer(area)
