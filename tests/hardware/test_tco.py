"""TCO model tests — the paper's deferred cost-of-operation analysis."""

from __future__ import annotations

import pytest

from repro.cluster.spec import ClusterSpec
from repro.core.search import search_best_config
from repro.errors import SpecError
from repro.hardware.gpu import H100, LITE_MEMBW
from repro.hardware.tco import (
    TCOAssumptions,
    TCOBreakdown,
    cluster_tco,
    tokens_per_dollar_comparison,
)
from repro.workloads.models import LLAMA3_70B


class TestAssumptions:
    def test_defaults_valid(self):
        TCOAssumptions()

    def test_validation(self):
        with pytest.raises(SpecError):
            TCOAssumptions(pue=0.9)
        with pytest.raises(SpecError):
            TCOAssumptions(utilization=0.0)
        with pytest.raises(SpecError):
            TCOAssumptions(maintenance_fraction_per_year=1.0)


class TestBreakdown:
    def test_components_sum(self):
        bd = TCOBreakdown(1.0, 0.5, 0.25, 2.0, 0.25)
        assert bd.capex_per_hour == 1.75
        assert bd.opex_per_hour == 2.25
        assert bd.total_per_hour == 4.0

    def test_usd_per_mtoken(self):
        bd = TCOBreakdown(1.0, 0.0, 0.0, 0.0, 0.0)
        # $1/hour at 1M tokens/hour -> $1/Mtok
        assert bd.usd_per_mtoken(1e6 / 3600.0) == pytest.approx(1.0)

    def test_rejects_zero_throughput(self):
        with pytest.raises(SpecError):
            TCOBreakdown(1, 0, 0, 0, 0).usd_per_mtoken(0.0)


class TestClusterTCO:
    def test_positive_components(self):
        bd = cluster_tco(ClusterSpec(H100, 8))
        assert bd.gpu_capex > 0
        assert bd.network_capex > 0
        assert bd.power_opex > 0
        assert bd.total_per_hour > 0

    def test_gpu_capex_dominates(self):
        """Sanity: for GPU clusters, the GPUs are the budget."""
        bd = cluster_tco(ClusterSpec(H100, 64))
        assert bd.gpu_capex > bd.network_capex
        assert bd.gpu_capex > bd.power_opex

    def test_electricity_price_moves_opex_only(self):
        cheap = cluster_tco(ClusterSpec(H100, 8), TCOAssumptions(electricity_usd_per_kwh=0.04))
        pricey = cluster_tco(ClusterSpec(H100, 8), TCOAssumptions(electricity_usd_per_kwh=0.16))
        assert pricey.power_opex == pytest.approx(4 * cheap.power_opex)
        assert pricey.gpu_capex == cheap.gpu_capex

    def test_longer_amortization_cheaper_hours(self):
        short = cluster_tco(ClusterSpec(H100, 8), TCOAssumptions(amortization_years=2))
        long = cluster_tco(ClusterSpec(H100, 8), TCOAssumptions(amortization_years=6))
        assert long.capex_per_hour < short.capex_per_hour


class TestPaperBottomLine:
    def test_lite_decode_wins_on_unit_economics(self):
        """The viability question, answered with the library's own numbers:
        Lite+MemBW decode delivers cheaper tokens than H100."""
        h100_best = search_best_config(LLAMA3_70B, H100, "decode").best
        lite_best = search_best_config(LLAMA3_70B, LITE_MEMBW, "decode").best
        comparison = tokens_per_dollar_comparison(
            ClusterSpec(H100, h100_best.n_gpus, "switched"),
            ClusterSpec(LITE_MEMBW, lite_best.n_gpus, "circuit"),
            h100_best.result.tokens_per_s,
            lite_best.result.tokens_per_s,
        )
        assert comparison["lite_saving"] > 0.0
        assert comparison["lite_usd_per_mtoken"] < comparison["h100_usd_per_mtoken"]


class TestGpuHourRate:
    def test_positive_and_scale_stable(self):
        from repro.hardware.gpu import H100
        from repro.hardware.tco import gpu_hour_rate

        small = gpu_hour_rate(H100, 8)
        large = gpu_hour_rate(H100, 64)
        assert small > 0 and large > 0
        # Per-GPU rates are roughly scale-free (fabric share shifts a bit).
        assert 0.5 < small / large < 2.0

    def test_power_inclusion_raises_rate(self):
        from repro.hardware.gpu import H100
        from repro.hardware.tco import gpu_hour_rate

        without = gpu_hour_rate(H100, 8)
        with_power = gpu_hour_rate(H100, 8, include_power=True)
        assert with_power > without

    def test_direct_topology_rounds_to_group(self):
        from repro.hardware.gpu import LITE
        from repro.hardware.tco import gpu_hour_rate

        # 5 GPUs on a direct fabric price as ceil(5/4)*4 = 8 endpoints.
        assert gpu_hour_rate(LITE, 5, None, "direct", 4) > 0

    def test_assumptions_flow_through(self):
        from repro.hardware.gpu import H100
        from repro.hardware.tco import TCOAssumptions, gpu_hour_rate

        short = gpu_hour_rate(H100, 8, TCOAssumptions(amortization_years=2.0))
        long = gpu_hour_rate(H100, 8, TCOAssumptions(amortization_years=8.0))
        assert short > long  # faster amortization = higher hourly rate
