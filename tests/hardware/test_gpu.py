"""GPU catalogue tests — Table 1 exactly as printed."""

from __future__ import annotations

import pytest

from repro.errors import RegistryError, SpecError
from repro.hardware.die import DieSpec
from repro.hardware.gpu import (
    GPU_TYPES,
    GPUSpec,
    H100,
    LITE,
    LITE_MEMBW,
    LITE_MEMBW_NETBW,
    LITE_NETBW,
    LITE_NETBW_FLOPS,
    TABLE1_ORDER,
    get_gpu,
)
from repro.units import GB, GB_PER_S, TFLOPS


#: (gpu, tflops, cap_gb, mem_bw, net_bw, max_gpus) — Table 1 verbatim.
TABLE1 = [
    (H100, 2000, 80, 3352, 450.0, 8),
    (LITE, 500, 20, 838, 112.5, 32),
    (LITE_NETBW, 500, 20, 838, 225.0, 32),
    (LITE_NETBW_FLOPS, 550, 20, 419, 225.0, 32),
    (LITE_MEMBW, 500, 20, 1675, 112.5, 32),
    (LITE_MEMBW_NETBW, 500, 20, 1675, 225.0, 32),
]


class TestTable1:
    @pytest.mark.parametrize("gpu,tflops,cap,mem,net,maxg", TABLE1, ids=lambda v: getattr(v, "name", v))
    def test_rows_match_paper(self, gpu, tflops, cap, mem, net, maxg):
        assert gpu.peak_flops == tflops * TFLOPS
        assert gpu.mem_capacity == cap * GB
        assert gpu.mem_bandwidth == mem * GB_PER_S
        assert gpu.net_bandwidth == net * GB_PER_S
        assert gpu.max_cluster == maxg

    def test_order_matches_paper(self):
        assert [g.name for g in TABLE1_ORDER] == [
            "H100", "Lite", "Lite+NetBW", "Lite+NetBW+FLOPS", "Lite+MemBW", "Lite+MemBW+NetBW",
        ]

    def test_h100_sm_count(self):
        assert H100.sms == 132

    def test_lite_is_quarter_h100(self):
        assert LITE.peak_flops * 4 == H100.peak_flops
        assert LITE.mem_capacity * 4 == H100.mem_capacity
        assert LITE.net_bandwidth * 4 == H100.net_bandwidth
        assert LITE.max_cluster == 4 * H100.max_cluster

    def test_lite_sms_match_total(self):
        """32 Lite GPUs carry the same SMs as 8 H100s (Section 4)."""
        assert 32 * LITE.sms == 8 * H100.sms


class TestDerivedMetrics:
    def test_membw_variant_doubles_bytes_per_flop(self):
        # Table 1 rounds 1676 GB/s down to 1675, hence the loose tolerance.
        assert LITE_MEMBW.mem_bytes_per_flop == pytest.approx(
            2 * H100.mem_bytes_per_flop, rel=1e-3
        )

    def test_lite_base_matches_h100_ratio(self):
        assert LITE.mem_bytes_per_flop == pytest.approx(H100.mem_bytes_per_flop)

    def test_ridge_point_positive(self):
        for gpu in TABLE1_ORDER:
            assert gpu.ridge_intensity > 0

    def test_hbm_seconds_invariant(self):
        """capacity/bandwidth is the same for H100 and base Lite — the
        full-memory decode-iteration invariant."""
        assert LITE.hbm_seconds == pytest.approx(H100.hbm_seconds)

    def test_power_density_equal_for_pure_split(self):
        assert LITE.power_density_w_mm2 == pytest.approx(H100.power_density_w_mm2)

    def test_scaleup_domains(self):
        assert H100.scaleup_domain == 8
        assert LITE.scaleup_domain == 4

    def test_lite_mesh_bandwidth_is_three_links(self):
        assert LITE.mesh_bandwidth == pytest.approx(3 * LITE.net_bandwidth)

    def test_h100_mesh_defaults_to_net(self):
        assert H100.mesh_bandwidth == H100.net_bandwidth


class TestClockScaling:
    def test_with_clock_factor(self):
        boosted = H100.with_clock_factor(1.1)
        assert boosted.peak_flops == pytest.approx(1.1 * H100.peak_flops)
        assert boosted.mem_bandwidth == H100.mem_bandwidth

    def test_rejects_nonpositive_factor(self):
        with pytest.raises(SpecError):
            H100.with_clock_factor(0.0)


class TestRegistry:
    def test_lookup_variants(self):
        assert get_gpu("lite+membw") is LITE_MEMBW
        assert get_gpu("H100") is H100

    def test_unknown_gpu(self):
        with pytest.raises(RegistryError):
            get_gpu("B300")

    def test_registry_size(self):
        assert len(GPU_TYPES) == 6


class TestValidation:
    def test_rejects_nonpositive_rates(self):
        with pytest.raises(SpecError):
            GPUSpec(
                name="bad", peak_flops=0, mem_capacity=1, mem_bandwidth=1,
                net_bandwidth=1, sms=1, max_cluster=1, die=DieSpec(100.0), tdp=1,
            )

    def test_describe_contains_name(self):
        assert "H100" in H100.describe()
