"""Yield-model tests — the paper's 1.8x claim and model invariants."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SpecError
from repro.hardware.yieldmodel import (
    YieldModel,
    murphy_yield,
    negative_binomial_yield,
    poisson_yield,
    seeds_yield,
    yield_gain,
)


class TestPaperClaims:
    def test_yield_gain_1_8x_at_quarter_area(self):
        """Section 2: 'yield rate can be increased by 1.8x when a H100-like
        compute die area is reduced by 1/4th' (Murphy, D0=0.1)."""
        gain = yield_gain(814.0, 4)
        assert gain == pytest.approx(1.8, abs=0.1)

    def test_h100_yield_under_50_percent(self):
        """A reticle-sized die on a 0.1/cm^2 process yields < 50%."""
        assert murphy_yield(814.0) < 0.5

    def test_lite_die_yield_above_80_percent(self):
        assert murphy_yield(814.0 / 4) > 0.8


class TestModelOrdering:
    """Poisson <= Murphy <= negative binomial(alpha) <= Seeds for any die."""

    @pytest.mark.parametrize("area", [50.0, 200.0, 814.0, 1600.0])
    def test_ordering(self, area):
        p = poisson_yield(area)
        m = murphy_yield(area)
        nb = negative_binomial_yield(area, alpha=3.0)
        s = seeds_yield(area)
        assert p <= m <= nb <= s

    def test_negbin_limits(self):
        """alpha -> inf approaches Poisson; alpha = 1 equals Seeds."""
        area = 400.0
        assert negative_binomial_yield(area, alpha=1.0) == pytest.approx(seeds_yield(area))
        assert negative_binomial_yield(area, alpha=1e6) == pytest.approx(
            poisson_yield(area), rel=1e-3
        )


class TestEdgeCases:
    def test_zero_defect_density_is_perfect(self):
        for fn in (poisson_yield, murphy_yield, seeds_yield):
            assert fn(814.0, 0.0) == pytest.approx(1.0)

    def test_rejects_nonpositive_area(self):
        with pytest.raises(SpecError):
            murphy_yield(0.0)

    def test_rejects_negative_density(self):
        with pytest.raises(SpecError):
            murphy_yield(814.0, -0.1)

    def test_rejects_bad_alpha(self):
        with pytest.raises(SpecError):
            negative_binomial_yield(814.0, alpha=0.0)

    def test_yield_gain_rejects_bad_split(self):
        with pytest.raises(SpecError):
            yield_gain(814.0, 0)


class TestYieldModelClass:
    def test_factories_name_models(self):
        assert YieldModel.poisson().name == "poisson"
        assert YieldModel.murphy().name == "murphy"
        assert "alpha=2" in YieldModel.negative_binomial(alpha=2.0).name

    def test_callable_matches_function(self):
        ym = YieldModel.murphy(0.15)
        assert ym(400.0) == pytest.approx(murphy_yield(400.0, 0.15))


class TestProperties:
    @given(
        area=st.floats(1.0, 3000.0),
        density=st.floats(0.0, 1.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_yields_bounded(self, area, density):
        for fn in (poisson_yield, murphy_yield, seeds_yield):
            y = fn(area, density)
            assert 0.0 <= y <= 1.0

    @given(
        area=st.floats(10.0, 3000.0),
        density=st.floats(0.01, 0.5),
        factor=st.floats(1.1, 4.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_yield_decreases_with_area(self, area, density, factor):
        for fn in (poisson_yield, murphy_yield, seeds_yield):
            assert fn(area * factor, density) < fn(area, density)

    @given(split=st.integers(2, 32), density=st.floats(0.02, 0.3))
    @settings(max_examples=60, deadline=None)
    def test_splitting_always_helps_yield(self, split, density):
        model = YieldModel.murphy(density)
        assert yield_gain(814.0, split, model) > 1.0
