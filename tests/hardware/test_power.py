"""Power/DVFS model tests — the Section 3 granularity argument."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SpecError
from repro.hardware.gpu import H100, LITE
from repro.hardware.power import (
    ClockPolicy,
    DVFSCurve,
    PowerModel,
    diurnal_load_profile,
)


class TestDVFSCurve:
    def test_full_clock_full_power(self):
        assert DVFSCurve().power_ratio(1.0) == pytest.approx(1.0)

    def test_gated_draws_nothing(self):
        assert DVFSCurve().power_ratio(0.0) == 0.0

    def test_static_floor_at_min_clock(self):
        curve = DVFSCurve(static_fraction=0.25, min_clock_ratio=0.4)
        floor = curve.power_ratio(0.01)
        assert floor == curve.power_ratio(0.4)
        assert floor > 0.25

    def test_superlinear_in_clock(self):
        curve = DVFSCurve()
        assert curve.power_ratio(1.2) > 1.2  # overclock costs superlinearly

    def test_clock_for_throughput_clamped(self):
        curve = DVFSCurve(min_clock_ratio=0.4)
        assert curve.clock_for_throughput(0.1) == 0.4
        assert curve.clock_for_throughput(0.9) == 0.9
        assert curve.clock_for_throughput(0.0) == 0.0

    def test_validation(self):
        with pytest.raises(SpecError):
            DVFSCurve(exponent=0.5)
        with pytest.raises(SpecError):
            DVFSCurve(static_fraction=1.0)
        with pytest.raises(SpecError):
            DVFSCurve().power_ratio(-0.1)


class TestPowerModel:
    def test_peak_power(self):
        assert PowerModel(H100, 8).peak_power == 8 * H100.tdp

    def test_always_base_ignores_load(self):
        model = PowerModel(H100, 8)
        p_low = model.power_at_load(0.1, ClockPolicy.ALWAYS_BASE)
        p_high = model.power_at_load(0.9, ClockPolicy.ALWAYS_BASE)
        assert p_low == p_high == model.peak_power

    def test_policies_ordered_at_partial_load(self):
        """gate+dvfs <= gate <= base at fractional load."""
        model = PowerModel(LITE, 32)
        base = model.power_at_load(0.3, ClockPolicy.ALWAYS_BASE)
        gate = model.power_at_load(0.3, ClockPolicy.POWER_GATE)
        gate_dvfs = model.power_at_load(0.3, ClockPolicy.GATE_PLUS_DVFS)
        assert gate_dvfs <= gate <= base

    def test_power_gating_beats_uniform_dvfs_at_low_load(self):
        """The headline Lite advantage: gating kills static power."""
        model = PowerModel(LITE, 32)
        uniform = model.power_at_load(0.15, ClockPolicy.UNIFORM_DVFS)
        gated = model.power_at_load(0.15, ClockPolicy.POWER_GATE)
        assert gated < uniform

    def test_full_load_equal_across_policies(self):
        model = PowerModel(LITE, 32)
        powers = {
            policy: model.power_at_load(1.0, policy)
            for policy in (ClockPolicy.ALWAYS_BASE, ClockPolicy.UNIFORM_DVFS, ClockPolicy.POWER_GATE)
        }
        assert len({round(p, 6) for p in powers.values()}) == 1

    def test_overclock_load_above_one(self):
        model = PowerModel(LITE, 32)
        p = model.power_at_load(1.2, ClockPolicy.ALWAYS_BASE)
        assert p > model.peak_power

    def test_finer_granularity_saves_more(self):
        """32 Lite GPUs power-gate closer to demand than 8 H100s."""
        loads = diurnal_load_profile(samples=96, low=0.2, high=0.9)
        h100 = PowerModel(H100, 8)
        lite = PowerModel(LITE, 32)
        s_h100 = h100.savings_vs_base(loads, 900.0, ClockPolicy.POWER_GATE)
        s_lite = lite.savings_vs_base(loads, 900.0, ClockPolicy.POWER_GATE)
        assert s_lite > s_h100

    def test_negative_load_rejected(self):
        with pytest.raises(SpecError):
            PowerModel(H100, 8).power_at_load(-0.1, ClockPolicy.ALWAYS_BASE)


class TestDiurnalProfile:
    def test_bounds_and_length(self):
        profile = diurnal_load_profile(samples=48, low=0.3, high=0.8)
        assert len(profile) == 48
        assert profile.min() >= 0.0 and profile.max() <= 1.0

    def test_peak_near_peak_hour(self):
        profile = diurnal_load_profile(samples=96, peak_hour=14.0)
        peak_idx = int(np.argmax(profile))
        assert abs(peak_idx / 96 * 24 - 14.0) < 1.0

    def test_noise_reproducible(self):
        a = diurnal_load_profile(seed=3, noise=0.05)
        b = diurnal_load_profile(seed=3, noise=0.05)
        assert np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(SpecError):
            diurnal_load_profile(samples=0)
        with pytest.raises(SpecError):
            diurnal_load_profile(low=0.9, high=0.5)


class TestProperties:
    @given(load=st.floats(0.0, 1.0))
    @settings(max_examples=50, deadline=None)
    def test_gating_never_beats_demand_floor(self, load):
        """No policy can beat the dynamic energy of the demanded work at
        the most efficient admissible clock (min_clock_ratio)."""
        model = PowerModel(LITE, 32)
        curve = model.curve
        best_per_op = (1 - curve.static_fraction) * curve.min_clock_ratio ** (
            curve.exponent - 1.0
        )
        for policy in (ClockPolicy.POWER_GATE, ClockPolicy.GATE_PLUS_DVFS, ClockPolicy.UNIFORM_DVFS):
            power = model.power_at_load(load, policy)
            floor = load * model.count * model.gpu.tdp * best_per_op
            assert power >= floor - 1e-6

    @given(load=st.floats(0.01, 1.0), count=st.integers(1, 64))
    @settings(max_examples=50, deadline=None)
    def test_power_monotone_in_policy_strictness(self, load, count):
        model = PowerModel(LITE, count)
        base = model.power_at_load(load, ClockPolicy.ALWAYS_BASE)
        gate = model.power_at_load(load, ClockPolicy.POWER_GATE)
        gate_dvfs = model.power_at_load(load, ClockPolicy.GATE_PLUS_DVFS)
        assert gate_dvfs <= gate + 1e-9
        assert gate <= base + 1e-9


class TestClockForPower:
    def test_inverse_of_power_ratio(self):
        from repro.hardware.power import DVFSCurve

        curve = DVFSCurve()
        for budget in (0.5, 0.7, 0.9):
            clock = curve.clock_for_power(budget)
            assert curve.min_clock_ratio <= clock <= 1.0
            assert curve.power_ratio(clock) <= budget + 1e-12

    def test_full_budget_is_full_clock(self):
        from repro.hardware.power import DVFSCurve

        assert DVFSCurve().clock_for_power(1.0) == 1.0
        assert DVFSCurve().clock_for_power(2.0) == 1.0

    def test_unreachable_budget_is_zero(self):
        from repro.hardware.power import DVFSCurve

        curve = DVFSCurve()
        floor = curve.power_ratio(curve.min_clock_ratio)
        assert curve.clock_for_power(floor * 0.5) == 0.0
        assert curve.clock_for_power(0.0) == 0.0

    def test_negative_budget_rejected(self):
        import pytest

        from repro.errors import SpecError
        from repro.hardware.power import DVFSCurve

        with pytest.raises(SpecError):
            DVFSCurve().clock_for_power(-0.1)
