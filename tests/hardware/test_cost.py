"""Manufacturing-cost model tests — Section 2's ~50% claim."""

from __future__ import annotations

import pytest

from repro.errors import SpecError
from repro.hardware.cost import CostBreakdown, CostModel, PackagingTier


class TestCostBreakdown:
    def test_total_sums_components(self):
        bd = CostBreakdown(silicon=100, packaging=50, memory=200, test=10)
        assert bd.total == 360

    def test_scaled(self):
        bd = CostBreakdown(1, 2, 3, 4).scaled(2)
        assert (bd.silicon, bd.packaging, bd.memory, bd.test) == (2, 4, 6, 8)

    def test_add(self):
        a = CostBreakdown(1, 1, 1, 1)
        b = CostBreakdown(2, 2, 2, 2)
        assert (a + b).total == 12


class TestPackageCost:
    def test_silicon_cost_falls_with_split(self):
        cm = CostModel()
        h100 = cm.package_cost(814.0, 80.0)
        four_lite = cm.package_cost(814.0 / 4, 20.0).scaled(4)
        assert four_lite.silicon < h100.silicon

    def test_memory_cost_is_capacity_neutral(self):
        cm = CostModel()
        h100 = cm.package_cost(814.0, 80.0)
        four_lite = cm.package_cost(814.0 / 4, 20.0).scaled(4)
        assert four_lite.memory == pytest.approx(h100.memory)

    def test_advanced_packaging_most_expensive(self):
        cm = CostModel()
        std = cm.packaging_cost(800.0, PackagingTier.STANDARD)
        interposer = cm.packaging_cost(800.0, PackagingTier.INTERPOSER_2_5D)
        advanced = cm.packaging_cost(800.0, PackagingTier.ADVANCED_MULTI_DIE)
        assert std < interposer < advanced

    def test_multi_die_packages_pay_per_die_silicon(self):
        cm = CostModel()
        dual = cm.package_cost(800.0, 192.0, PackagingTier.ADVANCED_MULTI_DIE, compute_dies=2)
        single = cm.package_cost(800.0, 192.0, PackagingTier.ADVANCED_MULTI_DIE, compute_dies=1)
        assert dual.silicon == pytest.approx(2 * single.silicon)

    def test_validation(self):
        cm = CostModel()
        with pytest.raises(SpecError):
            cm.package_cost(814.0, -1.0)
        with pytest.raises(SpecError):
            cm.package_cost(814.0, 80.0, compute_dies=0)


class TestPaperClaims:
    def test_silicon_cost_reduction_near_50_percent(self):
        """Section 2: 'almost 50% reduction in manufacturing cost'."""
        reduction = CostModel().cost_reduction()
        assert reduction == pytest.approx(0.5, abs=0.1)

    def test_full_package_reduction_smaller_but_positive(self):
        """With HBM and packaging included, the saving shrinks (HBM is
        capacity-neutral) but stays positive."""
        full = CostModel().cost_reduction(silicon_only=False)
        silicon_only = CostModel().cost_reduction(silicon_only=True)
        assert 0.0 < full < silicon_only

    def test_equivalent_compute_cost_returns_both(self):
        parent, lite = CostModel().equivalent_compute_cost(814.0, 4, 80.0)
        assert lite.silicon < parent.silicon
        assert lite.total < parent.total
