"""Figure 1 dataset tests — the trends the paper's motivation cites."""

from __future__ import annotations

import pytest

from repro.errors import SpecError
from repro.hardware.die import RETICLE_LIMIT_MM2
from repro.hardware.evolution import GPU_GENERATIONS, evolution_trends, generation


class TestDataset:
    def test_chronological_order(self):
        years = [g.year for g in GPU_GENERATIONS]
        assert years == sorted(years)

    def test_known_generations_present(self):
        names = {g.name for g in GPU_GENERATIONS}
        assert {"V100", "A100", "H100", "B200"} <= names

    def test_lookup(self):
        assert generation("h100").year == 2022

    def test_unknown_generation(self):
        with pytest.raises(SpecError):
            generation("RTX4090")


class TestTrends:
    def test_single_die_area_saturated_at_reticle(self):
        """The core motivation: per-die area stopped growing (reticle wall)."""
        recent = [g for g in GPU_GENERATIONS if g.year >= 2017]
        for gen in recent:
            assert gen.die_area_mm2 <= RETICLE_LIMIT_MM2
        v100 = generation("V100")
        h100 = generation("H100")
        assert abs(h100.die_area_mm2 - v100.die_area_mm2) / v100.die_area_mm2 < 0.05

    def test_transistors_keep_climbing(self):
        counts = [g.transistors_b for g in GPU_GENERATIONS]
        assert counts == sorted(counts)
        assert counts[-1] / counts[0] > 10

    def test_packaging_absorbs_growth(self):
        """B200 doubled packaged silicon via dies, not die size."""
        b200 = generation("B200")
        assert b200.compute_dies == 2
        assert b200.die_area_mm2 <= RETICLE_LIMIT_MM2

    def test_power_density_rises(self):
        v100 = generation("V100")
        h100 = generation("H100")
        assert h100.power_density_w_mm2 > v100.power_density_w_mm2

    def test_trend_summary_fields(self):
        trends = evolution_trends()
        assert trends["transistor_growth"] > 10
        assert trends["per_die_area_growth"] < 1.5
        assert trends["tdp_growth"] > 3
        assert trends["dies_per_package_growth"] == 2.0

    def test_mem_bw_per_area_motivates_shoreline(self):
        """Bandwidth per packaged area grew slower than compute density —
        the shoreline squeeze (H100 vs P100)."""
        p100 = generation("P100")
        h100 = generation("H100")
        density_growth = h100.transistor_density_m_mm2 / p100.transistor_density_m_mm2
        bw_growth = h100.bw_per_area / p100.bw_per_area
        assert density_growth > bw_growth
