"""Cooling/thermal model tests — Section 2's cooling argument."""

from __future__ import annotations

import pytest

from repro.errors import SpecError
from repro.hardware.cooling import (
    CoolingKind,
    CoolingModel,
    ThermalEnvironment,
    rack_cooling_requirement,
)
from repro.hardware.gpu import H100, LITE


class TestThermalEnvironment:
    def test_budget(self):
        env = ThermalEnvironment(ambient_c=35.0, junction_limit_c=90.0)
        assert env.budget_k == 55.0

    def test_rejects_inverted_limits(self):
        with pytest.raises(SpecError):
            ThermalEnvironment(ambient_c=90.0, junction_limit_c=35.0)


class TestThermalResistance:
    def test_resistance_rises_for_small_dies(self):
        model = CoolingModel()
        assert model.thermal_resistance(200.0) > model.thermal_resistance(800.0)

    def test_liquid_beats_air(self):
        air = CoolingModel(CoolingKind.AIR)
        liquid = CoolingModel(CoolingKind.LIQUID_COLD_PLATE)
        assert liquid.thermal_resistance(800.0) < air.thermal_resistance(800.0)

    def test_rejects_nonpositive_area(self):
        with pytest.raises(SpecError):
            CoolingModel().thermal_resistance(0.0)


class TestPaperClaims:
    def test_h100_needs_liquid_lite_runs_on_air(self):
        """Section 2: smaller single-die GPUs can be air-cooled separately."""
        air = CoolingModel(CoolingKind.AIR)
        assert not air.can_cool(H100)
        assert air.can_cool(LITE)

    def test_lite_junction_cooler_than_h100(self):
        """Area/4 doubles resistance but TDP/4 halves the temperature rise."""
        air = CoolingModel(CoolingKind.AIR)
        assert air.junction_temp(LITE) < air.junction_temp(H100)

    def test_h100_throttles_on_air(self):
        air = CoolingModel(CoolingKind.AIR)
        assert air.throttle_factor(H100) < 1.0

    def test_lite_overclock_headroom_covers_10_percent(self):
        """The +FLOPS variant's overclock must fit the air envelope."""
        air = CoolingModel(CoolingKind.AIR)
        assert air.overclock_headroom(LITE) >= 1.10

    def test_liquid_cools_h100(self):
        assert CoolingModel(CoolingKind.LIQUID_COLD_PLATE).can_cool(H100)


class TestRackCooling:
    def test_dense_h100_rack_needs_liquid(self):
        assert rack_cooling_requirement(H100, 72) is CoolingKind.LIQUID_COLD_PLATE

    def test_lite_rack_runs_on_air(self):
        """Same compute per rack (4x the devices), air-coolable — the
        Section 3 'eliminate liquid cooling racks' argument."""
        assert rack_cooling_requirement(LITE, 72) is CoolingKind.AIR

    def test_rejects_empty_rack(self):
        with pytest.raises(SpecError):
            rack_cooling_requirement(H100, 0)


class TestJunctionMath:
    def test_junction_temp_linear_in_power(self):
        model = CoolingModel(CoolingKind.LIQUID_COLD_PLATE)
        t1 = model.junction_temp(H100, 350.0)
        t2 = model.junction_temp(H100, 700.0)
        rise1 = t1 - model.env.ambient_c
        rise2 = t2 - model.env.ambient_c
        assert rise2 == pytest.approx(2 * rise1)

    def test_max_power_at_junction_limit(self):
        model = CoolingModel(CoolingKind.LIQUID_COLD_PLATE)
        power = model.max_power(H100)
        assert model.junction_temp(H100, power) == pytest.approx(model.env.junction_limit_c)

    def test_negative_power_rejected(self):
        with pytest.raises(SpecError):
            CoolingModel().junction_temp(H100, -1.0)
