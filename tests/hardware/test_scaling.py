"""Lite-GPU derivation tests — the Figure 2 construction."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SpecError
from repro.hardware.gpu import H100, LITE
from repro.hardware.scaling import (
    LiteScaling,
    derive_lite_gpu,
    group_properties,
    max_overclock_from_power_density,
)


class TestDeriveLite:
    def test_basic_quarter_split_matches_table1(self):
        lite = derive_lite_gpu(H100, LiteScaling(split=4))
        assert lite.peak_flops == pytest.approx(LITE.peak_flops)
        assert lite.mem_capacity == pytest.approx(LITE.mem_capacity)
        assert lite.mem_bandwidth == pytest.approx(LITE.mem_bandwidth)
        assert lite.net_bandwidth == pytest.approx(LITE.net_bandwidth)
        assert lite.sms == LITE.sms
        assert lite.max_cluster == LITE.max_cluster

    def test_membw_boost_matches_table1_variant(self):
        lite = derive_lite_gpu(H100, LiteScaling(split=4, mem_bw_boost=2.0))
        assert lite.mem_bandwidth == pytest.approx(1676e9, rel=0.001)

    def test_overclock_scales_flops_and_tdp(self):
        base = derive_lite_gpu(H100, LiteScaling(split=4))
        fast = derive_lite_gpu(H100, LiteScaling(split=4, clock_factor=1.1))
        assert fast.peak_flops == pytest.approx(1.1 * base.peak_flops)
        assert fast.tdp > base.tdp

    def test_die_area_divided(self):
        lite = derive_lite_gpu(H100, LiteScaling(split=4))
        assert lite.die.area_mm2 == pytest.approx(H100.die.area_mm2 / 4)


class TestShorelineBudget:
    def test_pure_split_within_budget(self):
        LiteScaling(split=4).validate(H100)  # must not raise

    def test_double_membw_within_budget(self):
        """The Lite+MemBW variant must be physically buildable."""
        LiteScaling(split=4, mem_bw_boost=2.0).validate(H100)

    def test_oversubscription_rejected(self):
        with pytest.raises(SpecError, match="shoreline"):
            LiteScaling(split=4, mem_bw_boost=3.0).validate(H100)

    def test_demand_scales_with_boost(self):
        low = LiteScaling(split=4, mem_bw_boost=1.0).shoreline_demand(H100)
        high = LiteScaling(split=4, mem_bw_boost=2.0).shoreline_demand(H100)
        assert high > low

    def test_shoreline_gain_is_sqrt_split(self):
        assert LiteScaling(split=9).shoreline_gain == pytest.approx(3.0)


class TestGroupProperties:
    def test_group_conserves_flops(self):
        props = group_properties(H100, LiteScaling(split=4))
        assert props["total_flops"] == pytest.approx(H100.peak_flops)

    def test_group_doubles_shoreline(self):
        props = group_properties(H100, LiteScaling(split=4))
        assert props["shoreline_gain"] == pytest.approx(2.0)

    def test_group_conserves_capacity_and_tdp(self):
        props = group_properties(H100, LiteScaling(split=4))
        assert props["total_capacity"] == pytest.approx(H100.mem_capacity)
        assert props["total_tdp"] == pytest.approx(H100.tdp)

    def test_membw_boost_raises_bw_to_compute(self):
        props = group_properties(H100, LiteScaling(split=4, mem_bw_boost=2.0))
        assert props["bw_to_compute_gain"] == pytest.approx(2.0)


class TestOverclockHeadroom:
    def test_headroom_grows_with_split(self):
        small = max_overclock_from_power_density(H100, 4)
        big = max_overclock_from_power_density(H100, 16)
        assert big > small > 1.0

    def test_paper_overclock_within_headroom(self):
        """The +FLOPS variant's 10% overclock must be sustainable."""
        assert max_overclock_from_power_density(H100, 4) >= 1.10

    def test_rejects_bad_args(self):
        with pytest.raises(SpecError):
            max_overclock_from_power_density(H100, 0)


class TestProperties:
    @given(split=st.sampled_from([2, 4, 8, 16]))
    @settings(max_examples=20, deadline=None)
    def test_aggregates_conserved_for_pure_split(self, split):
        lite = derive_lite_gpu(H100, LiteScaling(split=split), validate_shoreline=False)
        assert lite.peak_flops * split == pytest.approx(H100.peak_flops)
        assert lite.mem_capacity * split == pytest.approx(H100.mem_capacity)
        assert lite.tdp * split == pytest.approx(H100.tdp)
