"""Die geometry and shoreline tests — the Section 2 geometric argument."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SpecError
from repro.hardware.die import RETICLE_LIMIT_MM2, DieSpec, shoreline_ratio


class TestGeometry:
    def test_width_height_area_consistent(self):
        die = DieSpec(area_mm2=814.0)
        assert die.width_mm * die.height_mm == pytest.approx(814.0)

    def test_aspect_respected(self):
        die = DieSpec(area_mm2=100.0, aspect=4.0)
        assert die.width_mm / die.height_mm == pytest.approx(4.0)

    def test_square_die(self):
        die = DieSpec(area_mm2=100.0, aspect=1.0)
        assert die.width_mm == pytest.approx(10.0)
        assert die.perimeter_mm == pytest.approx(40.0)

    def test_rejects_bad_area_and_aspect(self):
        with pytest.raises(SpecError):
            DieSpec(area_mm2=0.0)
        with pytest.raises(SpecError):
            DieSpec(area_mm2=100.0, aspect=0.5)


class TestReticle:
    def test_h100_within_reticle(self):
        assert DieSpec(814.0).within_reticle

    def test_oversized_die_exceeds_reticle(self):
        assert not DieSpec(RETICLE_LIMIT_MM2 + 1).within_reticle


class TestSplit:
    def test_split_divides_area(self):
        quarter = DieSpec(814.0).split(4)
        assert quarter.area_mm2 == pytest.approx(814.0 / 4)

    def test_split_preserves_aspect(self):
        die = DieSpec(814.0, aspect=1.5)
        assert die.split(4).aspect == 1.5

    def test_split_rejects_nonpositive(self):
        with pytest.raises(SpecError):
            DieSpec(814.0).split(0)

    def test_quarter_has_half_perimeter(self):
        """Linear dimensions scale by 1/2 at area/4."""
        die = DieSpec(814.0)
        assert die.split(4).perimeter_mm == pytest.approx(die.perimeter_mm / 2)


class TestShoreline:
    def test_paper_claim_4way_split_doubles_shoreline(self):
        """Section 2: 'reducing the die area to 1/4th doubles the perimeter'."""
        assert shoreline_ratio(4) == pytest.approx(2.0)

    def test_shoreline_ratio_sqrt_law(self):
        assert shoreline_ratio(16) == pytest.approx(4.0)
        assert shoreline_ratio(1) == 1.0

    def test_shoreline_per_area_increases_when_split(self):
        die = DieSpec(814.0)
        assert die.split(4).shoreline_per_area > die.shoreline_per_area

    def test_max_shoreline_bandwidth_scales_with_density(self):
        die = DieSpec(814.0)
        assert die.max_shoreline_bandwidth(200.0) == pytest.approx(
            2 * die.max_shoreline_bandwidth(100.0)
        )

    def test_bandwidth_rejects_nonpositive_density(self):
        with pytest.raises(SpecError):
            DieSpec(814.0).max_shoreline_bandwidth(0.0)


class TestProperties:
    @given(area=st.floats(1.0, 5000.0), parts=st.integers(1, 64))
    @settings(max_examples=60, deadline=None)
    def test_total_split_perimeter_matches_sqrt_law(self, area, parts):
        die = DieSpec(area)
        total = die.split(parts).perimeter_mm * parts
        assert total == pytest.approx(die.perimeter_mm * math.sqrt(parts))

    @given(area=st.floats(1.0, 5000.0), aspect=st.floats(1.0, 5.0))
    @settings(max_examples=60, deadline=None)
    def test_perimeter_minimal_for_square(self, area, aspect):
        rect = DieSpec(area, aspect=aspect)
        square = DieSpec(area, aspect=1.0)
        assert rect.perimeter_mm >= square.perimeter_mm - 1e-9
