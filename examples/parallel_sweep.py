"""Parallel experiment execution: sweep a grid, replicate failures, cache it.

Demonstrates the ``repro.exec`` layer end-to-end:

1. a 2-D (arrival rate x pool size) sweep fanned across worker processes,
   with per-point results cached under ``.repro_cache/`` — re-run this
   script and every point is a disk hit;
2. a :class:`SimulationEnsemble`: 8 replicas of one deployment under
   independently seeded stochastic failures, aggregated into mean metrics
   with 95% confidence intervals.

Run with ``PYTHONPATH=src python examples/parallel_sweep.py``.
"""

from __future__ import annotations

import os

from repro.analysis.report import simulation_table
from repro.analysis.sweeps import argbest, sweep_grid
from repro.cluster.failures import FailureModel
from repro.cluster.scheduler import ColocatedPool, InstanceSpec
from repro.cluster.simulator import ColocatedSimulator, SimConfig
from repro.exec import ResultCache, SimulationEnsemble
from repro.hardware.gpu import H100
from repro.workloads.models import LLAMA3_8B
from repro.workloads.traces import TraceConfig, generate_trace

WORKERS = 4
TINY = os.environ.get("REPRO_EXAMPLE_TINY") == "1"  # CI smoke mode: tiny sweep
DURATION = 6.0 if TINY else 20.0
REPLICAS = 3 if TINY else 8


def sweep_point(rate: float, n_instances: int):
    """One grid point: must be module-level so worker processes can pickle it."""
    pool = ColocatedPool(
        instance=InstanceSpec(LLAMA3_8B, H100, 1),
        n_instances=n_instances,
        max_decode_batch=64,
    )
    trace = generate_trace(
        TraceConfig(rate=rate, duration=DURATION, output_tokens=80, output_spread=0.5), seed=0
    )
    return ColocatedSimulator(pool, SimConfig(max_sim_time=300.0)).run(trace)


def main() -> None:
    cache = ResultCache()  # .repro_cache/, salted with repro.__version__
    records = sweep_grid(
        sweep_point, xs=[2.0, 4.0, 6.0], ys=[1, 2],
        x_name="rate", y_name="n", workers=WORKERS, cache=cache,
    )
    reports = {
        f"rate={r['rate']:g} n={r['n']}": r["result"]
        for r in records if "error" not in r
    }
    print(simulation_table(reports, title=f"Sweep grid ({WORKERS} workers)"))
    best = argbest(records, key=lambda r: r["result"].output_tokens_per_s)
    print(
        f"best throughput: rate={best['rate']:g} n={best['n']} "
        f"({best['result'].output_tokens_per_s:.0f} out tok/s)"
    )
    info = cache.cache_info()
    print(f"cache: {info['hits']} hits, {info['misses']} misses ({cache.root})\n")

    ensemble = SimulationEnsemble(
        ColocatedPool(
            instance=InstanceSpec(LLAMA3_8B, H100, 1), n_instances=2, max_decode_batch=64
        ),
        SimConfig(max_sim_time=300.0),
        failure_model=FailureModel(mtbf=30.0, mttr=10.0),
        base_seed=0,
        n_replicas=REPLICAS,
    )
    trace = generate_trace(
        TraceConfig(rate=4.0, duration=DURATION, output_tokens=80, output_spread=0.5), seed=0
    )
    print(ensemble.run(trace, workers=WORKERS).describe())


if __name__ == "__main__":
    main()
