#!/usr/bin/env python3
"""Topology-aware serving: what the fabric charges for a bad placement.

Section 3 of the paper asks whether a cluster of many Lite-GPUs can hide
the cost of a much larger network.  This example co-simulates the serving
engine with a concrete fabric to make the question quantitative:

1. place a 32x Lite Splitwise deployment (2 prefill + 2 decode instances
   of 8 GPUs) onto a direct-connect topology of 8-GPU mesh groups, with
   every placer in the registry (packed / greedy / random / scattered);
2. price each instance's tensor-parallel collectives from its *actual* GPU
   group — hop-scaled latency, fabric injection bandwidth, link-contention
   slowdown (``network_model="fabric"``);
3. knock out one physical component (the shared uplink hub switch) and show
   the blast radius resolving through the placement onto every instance.

Run:  python examples/topology_aware_serving.py
"""

from __future__ import annotations

import os

from repro.analysis.report import simulation_table
from repro.cluster.failures import ComponentFailure, affected_gpus
from repro.cluster.placement import PLACERS, placement_hop_stats
from repro.cluster.scheduler import InstanceSpec, PhasePools
from repro.cluster.simulator import ServingSimulator, SimConfig
from repro.hardware.gpu import LITE_MEMBW, LITE_NETBW_FLOPS
from repro.network.topology import DirectConnectTopology
from repro.workloads.models import LLAMA3_70B
from repro.workloads.traces import TraceConfig, generate_trace

TINY = os.environ.get("REPRO_EXAMPLE_TINY") == "1"  # CI smoke mode: tiny trace


def deployment() -> PhasePools:
    return PhasePools(
        prefill=InstanceSpec(LLAMA3_70B, LITE_NETBW_FLOPS, 8),
        n_prefill=2,
        decode=InstanceSpec(LLAMA3_70B, LITE_MEMBW, 8),
        n_decode=2,
        max_prefill_batch=4,
        max_decode_batch=256,
    )


def main() -> None:
    trace = generate_trace(
        TraceConfig(rate=6.0, duration=8.0 if TINY else 40.0, output_tokens=150, output_spread=0.5),
        seed=13,
    )
    topology = DirectConnectTopology(n_gpus=32, group=8)
    config = SimConfig(max_sim_time=600.0)

    print(f"fabric: direct-connect, {topology.n_gpus} GPUs in groups of {topology.group}\n")
    reports = {}
    for placer in ("packed", "greedy", "random", "scattered"):
        assert placer in PLACERS
        simulator = ServingSimulator(
            deployment(), config,
            topology=topology, placer=placer, network_model="fabric",
        )
        stats = placement_hop_stats(topology, simulator.placement)
        reports[f"{placer} ({stats['mean_hops']:.1f} hops)"] = simulator.run(trace)
    print(simulation_table(reports, title="Placement vs fabric cost (same trace)"))

    # --- component-level blast radius ---------------------------------------
    hub_gpus = affected_gpus(topology, "switch", 0)
    print(f"\nhub switch fronts GPUs {hub_gpus}: one uplink holder per group")
    event = ComponentFailure(time=5.0, component="switch", index=0, duration=60.0)
    simulator = ServingSimulator(
        deployment(), config,
        topology=topology, placer="packed", component_failures=[event],
    )
    downed = sorted({(pool, index) for _, pool, index, _ in simulator.failures})
    print(f"blast radius through the placement: {downed}")
    report = simulator.run(trace)
    print(
        f"with the outage: {report.completed} completed, "
        f"{report.restarted_requests} requests restarted, "
        f"{report.requeued_on_failure} requeue events"
    )


if __name__ == "__main__":
    main()
