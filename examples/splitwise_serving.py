#!/usr/bin/env python3
"""Splitwise at Lite-GPU scale: phase-specialized serving, simulated.

The paper (Sections 3-4) argues Lite-GPUs let operators customize hardware
per inference phase "at much finer scale" than Splitwise's cluster-level
split: racks of +FLOPS Lite-GPUs for prefill, racks of +MemBW Lite-GPUs for
decode.  This example runs the discrete-event serving simulator on the same
Poisson trace against three deployments of equal total SMs:

1. classic:       8x H100            (2 prefill + 2 decode instances of 2)
2. uniform Lite:  32x Lite           (same layout, 8 GPUs per instance)
3. specialized:   16x Lite+NetBW+FLOPS prefill + 16x Lite+MemBW decode

Run:  python examples/splitwise_serving.py
"""

from __future__ import annotations

import os

from repro.analysis.report import simulation_table
from repro.cluster.scheduler import InstanceSpec, PhasePools
from repro.cluster.simulator import ServingSimulator, SimConfig
from repro.hardware.gpu import H100, LITE, LITE_MEMBW, LITE_NETBW_FLOPS
from repro.workloads.models import LLAMA3_70B
from repro.workloads.traces import TraceConfig, generate_trace

# CI smoke mode (tests/test_examples.py sets REPRO_EXAMPLE_TINY=1): shrink
# the trace so the example finishes in a couple of seconds.
TINY = os.environ.get("REPRO_EXAMPLE_TINY") == "1"


def deployment(prefill_gpu, decode_gpu, gpus_per_instance) -> PhasePools:
    return PhasePools(
        prefill=InstanceSpec(LLAMA3_70B, prefill_gpu, gpus_per_instance),
        n_prefill=2,
        decode=InstanceSpec(LLAMA3_70B, decode_gpu, gpus_per_instance),
        n_decode=2,
        max_prefill_batch=4,
        max_decode_batch=256,
    )


def main() -> None:
    trace = generate_trace(
        TraceConfig(rate=6.0, duration=8.0 if TINY else 60.0, output_tokens=150, output_spread=0.5),
        seed=42,
    )
    print(f"trace: {len(trace)} requests, 1500-token prompts, ~150-token outputs\n")

    deployments = [
        ("8x H100", deployment(H100, H100, 2)),
        ("32x Lite (uniform)", deployment(LITE, LITE, 8)),
        ("32x Lite (specialized)", deployment(LITE_NETBW_FLOPS, LITE_MEMBW, 8)),
    ]

    config = SimConfig(max_sim_time=900.0)
    reports = {name: ServingSimulator(pools, config).run(trace) for name, pools in deployments}
    print(
        simulation_table(
            reports,
            title="Llama3-70B serving, equal total SMs (two prefill + two decode instances)",
        )
    )
    print(
        "\nReading: the specialized Lite deployment turns the hardware knobs\n"
        "the phases actually care about — overclocked compute for prefill,\n"
        "doubled HBM bandwidth for decode — and beats both uniform layouts\n"
        "on TBT at the same silicon budget."
    )


if __name__ == "__main__":
    main()
