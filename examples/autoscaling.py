#!/usr/bin/env python3
"""Elastic serving: autoscaling, power caps, and $/Mtoken, co-simulated.

The paper's economics question — does a deployment win on perf-per-TCO and
perf-per-watt *under real load*? — needs dynamic behaviour: pools that
shed capacity through traffic lulls, grow ahead of ramps, and throttle
under datacenter power caps.  This example runs one bursty trace
(quiet / burst / quiet) against the same peak-provisioned deployment under
four cluster controllers and compares the outcome the operator actually
bills: provisioned gpu-seconds, energy, and $/Mtoken at the TTFT SLO.

Run:  python examples/autoscaling.py
"""

from __future__ import annotations

import os

from repro.analysis.report import simulation_table
from repro.cluster.control import (
    ForecastController,
    PowerCapController,
    ReactiveController,
    SLOController,
)
from repro.cluster.power_manager import ClusterPowerManager
from repro.cluster.scheduler import InstanceSpec, PhasePools
from repro.cluster.simulator import ServingSimulator, SimConfig
from repro.hardware.gpu import H100
from repro.workloads.models import LLAMA3_8B
from repro.workloads.traces import TraceConfig, generate_piecewise_trace

TINY = os.environ.get("REPRO_EXAMPLE_TINY") == "1"  # CI smoke mode: tiny trace
SEGMENT = 20.0 if TINY else 60.0


def deployment() -> PhasePools:
    """Peak-provisioned: sized so the burst segment is comfortable."""
    return PhasePools(
        prefill=InstanceSpec(LLAMA3_8B, H100, 1),
        n_prefill=2,
        decode=InstanceSpec(LLAMA3_8B, H100, 1),
        n_decode=6,
        max_prefill_batch=4,
        max_decode_batch=32,
    )


def main() -> None:
    trace = generate_piecewise_trace(
        [(1.0, SEGMENT), (8.0, SEGMENT), (1.0, SEGMENT)],
        TraceConfig(output_tokens=100, output_spread=0.5),
        seed=7,
    )
    print(
        f"bursty trace: {len(trace)} requests "
        f"(1 -> 8 -> 1 req/s, {SEGMENT:g}s segments)\n"
    )
    deploy = deployment()
    bounds = dict(epoch=5.0, warmup_s=10.0, max_instances=6)
    controllers = {
        "static (peak-provisioned)": None,
        "reactive (queue/occupancy)": ReactiveController(
            calm_epochs=2, queue_high=2.0, **bounds
        ),
        "slo (rolling TTFT/TBT p99)": SLOController(calm_epochs=2, **bounds),
        "forecast (profile + lead)": ForecastController(
            profile=[(0.0, 0.2), (SEGMENT, 1.0), (2 * SEGMENT, 0.2)], **bounds
        ),
    }
    config = SimConfig(max_sim_time=3600.0)
    reports = {}
    for name, controller in controllers.items():
        report = ServingSimulator(deploy, config, controller=controller).run(trace)
        label = name
        if report.spawned_instances or report.retired_instances:
            label += f" [+{report.spawned_instances}/-{report.retired_instances}]"
        reports[label] = report
    print(simulation_table(reports, title="Static vs elastic ($/Mtok at equal SLO)"))

    # --- a datacenter power-cap event ---------------------------------------
    manager = ClusterPowerManager(H100, deploy.total_gpus)
    cap_watts = deploy.total_gpus * H100.tdp * 0.5
    capper = PowerCapController(
        manager=manager, epoch=5.0,
        caps=[(SEGMENT, 2 * SEGMENT, cap_watts)],  # cap lands on the burst
    )
    free = reports["static (peak-provisioned)"]
    capped = ServingSimulator(deploy, config, controller=capper).run(trace)
    print(
        f"\npower cap {cap_watts / 1e3:.1f} kW over the burst segment:\n"
        f"  energy {free.energy_joules / 3.6e6:.3f} -> "
        f"{capped.energy_joules / 3.6e6:.3f} kWh, "
        f"TBT mean {free.tbt_mean * 1e3:.1f} -> {capped.tbt_mean * 1e3:.1f} ms "
        f"(DVFS throttle visible in latency, all "
        f"{capped.completed}/{len(trace)} requests served)"
    )
    print(
        "\nReading: the reactive controller drains idle instances through the\n"
        "lulls and re-spawns for the burst, cutting provisioned gpu-seconds\n"
        "and $/Mtoken by more than half at the same P99-TTFT SLO — the\n"
        "perf-per-TCO delta the paper's Section 3 argues for."
    )


if __name__ == "__main__":
    main()
