#!/usr/bin/env python3
"""MoE on Lite-GPUs: the workload that loves memory bandwidth most.

The paper's related work points at DeepSeek-style efficiency on weaker
hardware; Mixture-of-Experts models are the sharpest case for Lite-GPUs:
~47B parameters resident but only ~13B active per token, so serving them is
a *weight-streaming* problem — exactly what the Lite+MemBW shoreline
allocation accelerates.  This example compares Mixtral-8x7B against the
dense Llama3-70B across GPU types, then sizes a serving deployment for a
traffic forecast.

Run:  python examples/moe_on_lite_gpus.py
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.cluster.provisioning import WorkloadForecast, provision_pools
from repro.core.metrics import normalize_to_baseline
from repro.core.search import search_best_config
from repro.hardware.gpu import H100, LITE, LITE_MEMBW
from repro.workloads.moe import MIXTRAL_8X7B
from repro.workloads.models import LLAMA3_70B

GPUS = (H100, LITE, LITE_MEMBW)


def main() -> None:
    print(MIXTRAL_8X7B.describe())
    print(
        f"total {MIXTRAL_8X7B.param_count / 1e9:.1f}B params, "
        f"active {MIXTRAL_8X7B.active_param_count / 1e9:.1f}B per token "
        f"(sparsity {MIXTRAL_8X7B.sparsity:.1f}x)\n"
    )

    rows = []
    for model in (LLAMA3_70B, MIXTRAL_8X7B):
        for phase in ("prefill", "decode"):
            series = {
                gpu.name: search_best_config(model, gpu, phase).best_tokens_per_s_per_sm
                for gpu in GPUS
            }
            norm = normalize_to_baseline(series, "H100")
            rows.append([model.name, phase] + [f"{norm[g.name]:.2f}" for g in GPUS])
    print(
        format_table(
            ["model", "phase"] + [g.name for g in GPUS],
            rows,
            title="Normalized tokens/s/SM (H100 = 1.0)",
        )
    )

    forecast = WorkloadForecast(rate=20.0, prompt_tokens=1500, output_tokens=250)
    plan = provision_pools(MIXTRAL_8X7B, LITE, LITE_MEMBW, forecast)
    print("\nDeployment for 20 req/s of Mixtral traffic:")
    print("  " + plan.describe())

    print(
        "\nReading: MoE decode streams the full expert set every iteration\n"
        "while only top-2 experts do math — the most memory-bound mainstream\n"
        "workload there is, and the one where the Lite+MemBW advantage over\n"
        "H100 is largest."
    )


if __name__ == "__main__":
    main()
