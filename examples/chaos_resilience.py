#!/usr/bin/env python3
"""Surviving failures: deadlines, retries, and checkpointed restarts.

The paper's fault-tolerance claim is about what happens *after* a GPU
dies: victims restart, clients retry, deadlines expire, goodput dips.
This example takes one small deployment, kills a decode instance
mid-run, and replays the same trace under three failure-response
postures:

- ``bare``        — no resilience layer: victims restart from prefill,
                    nobody times out, throughput is the only metric.
- ``resilient``   — deadlines + queue timeouts + capped exponential
                    backoff with jitter: late work is shed and retried,
                    goodput counts only completions inside the deadline.
- ``checkpointed``— the same, plus 64-token checkpointed restarts priced
                    through the service-time provider: victims resume
                    instead of redoing their whole generation.

For the full chaos suite (rack-scale blast radius, big vs Lite fleets,
retry storms) see ``python -m repro chaos`` and
``benchmarks/test_chaos_resilience.py``.

Run:  python examples/chaos_resilience.py
"""

from __future__ import annotations

import os

from repro.analysis.report import simulation_table
from repro.analysis.tables import format_table
from repro.cluster.resilience import ResilienceConfig
from repro.cluster.scheduler import InstanceSpec, PhasePools
from repro.cluster.simulator import ServingSimulator, SimConfig
from repro.hardware.gpu import H100
from repro.workloads.models import LLAMA3_8B
from repro.workloads.traces import TraceConfig, generate_trace

TINY = os.environ.get("REPRO_EXAMPLE_TINY") == "1"  # CI smoke mode: tiny trace
DURATION = 8.0 if TINY else 30.0
FAIL_AT = 3.0
REPAIR_S = 6.0 if TINY else 12.0


def deployment() -> PhasePools:
    return PhasePools(
        prefill=InstanceSpec(LLAMA3_8B, H100, 1),
        n_prefill=1,
        decode=InstanceSpec(LLAMA3_8B, H100, 1),
        n_decode=2,
        max_prefill_batch=4,
        max_decode_batch=32,
    )


def main() -> None:
    trace = generate_trace(
        TraceConfig(rate=40.0, duration=DURATION, output_tokens=300, output_spread=0.4),
        seed=3,
    )
    failures = [(FAIL_AT, "decode", 0, REPAIR_S)]

    def resilience(**kw) -> ResilienceConfig:
        return ResilienceConfig(
            deadline_s=8.0, queue_timeout_s=2.0, retry="exp_jitter", **kw
        )

    configs = {
        "bare": None,
        "resilient": resilience(),
        # A fast checkpoint tier (1 TB/s) keeps the write tax negligible.
        "checkpointed": resilience(checkpoint_interval=64, checkpoint_bandwidth=1e12),
    }
    reports = {
        name: ServingSimulator(
            deployment(), SimConfig(resilience=config), failures=failures
        ).run(trace)
        for name, config in configs.items()
    }

    print(f"decode instance 0 dies at t={FAIL_AT:g}s for {REPAIR_S:g}s "
          f"({len(trace)} requests)\n")
    print(simulation_table(reports, title="Throughput view (failure-blind)"))
    print()
    print(format_table(
        ["posture", "goodput tok/s", "deadline missed", "timed out",
         "retries", "MTTR s", "availability"],
        [
            [name, f"{r.goodput_tokens_per_s:.0f}", r.deadline_missed,
             r.timed_out, r.retries, f"{r.mttr_s:.2f}", f"{r.availability:.4f}"]
            for name, r in reports.items()
            if configs[name] is not None
        ],
        title="Resilience view (what the failure actually cost)",
    ))
    resilient, ckpt = reports["resilient"], reports["checkpointed"]
    delta = ckpt.goodput_tokens - resilient.goodput_tokens
    print(
        f"\ncheckpointed restarts recover {delta:+,} goodput tokens vs "
        f"restart-from-prefill (MTTR {resilient.mttr_s:.2f}s -> {ckpt.mttr_s:.2f}s)"
    )


if __name__ == "__main__":
    main()
