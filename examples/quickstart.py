#!/usr/bin/env python3
"""Quickstart: the paper's case study in about twenty lines.

Reproduces the core of Section 4: given an LLM and the Table 1 GPU types,
find each type's best (batch, #GPUs) configuration under the Splitwise SLOs
(TTFT <= 1 s, TBT <= 50 ms), and compare efficiency in tokens/s/SM.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    H100,
    LITE,
    LITE_MEMBW,
    LLAMA3_70B,
    normalize_to_baseline,
    search_best_config,
)
from repro.analysis.tables import render_table1


def main() -> None:
    print(render_table1())
    print()
    print(f"Model: {LLAMA3_70B.describe()}")
    print()

    for phase in ("prefill", "decode"):
        print(f"-- {phase} --")
        series = {}
        for gpu in (H100, LITE, LITE_MEMBW):
            result = search_best_config(LLAMA3_70B, gpu, phase)
            series[gpu.name] = result.best_tokens_per_s_per_sm
            print("  " + result.describe())
        normalized = normalize_to_baseline(series, "H100")
        pretty = ", ".join(f"{k}: {v:.2f}" for k, v in normalized.items())
        print(f"  normalized to H100 -> {pretty}")
        print()

    print(
        "Reading: decode on Lite+MemBW exceeds the H100 cluster per SM —\n"
        "the shoreline surplus of small dies, spent on memory bandwidth,\n"
        "is exactly what the memory-bound decode phase wants (Figure 3b)."
    )


if __name__ == "__main__":
    main()
