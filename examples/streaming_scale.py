"""Simulating millions of requests in constant memory.

The exact simulation path materializes every request and latency sample —
fine for a 40-second trace, impossible for a 10M-request day.  This
example runs the same colocated deployment three ways:

1. ``metrics="exact"`` over a materialized trace (the seed behaviour);
2. ``metrics="streaming"`` over a lazy :func:`iter_trace` — quantile
   sketches instead of per-request rows, arrivals generated in bounded
   windows and fed one ahead of the clock;
3. ``run_sharded`` — the run factored into independent engine shards
   whose sketches merge into one report.

Usage::

    PYTHONPATH=src python examples/streaming_scale.py

Set ``REPRO_EXAMPLE_TINY=1`` (the test harness does) for a seconds-long
trace.
"""

from __future__ import annotations

import os

from repro.cluster.scheduler import ColocatedPool, InstanceSpec
from repro.cluster.simulator import ColocatedSimulator, SimConfig
from repro.exec.sharding import run_sharded
from repro.hardware.gpu import H100
from repro.workloads.models import LLAMA3_8B
from repro.workloads.traces import TraceConfig, generate_trace, iter_trace

TINY = bool(os.environ.get("REPRO_EXAMPLE_TINY"))


def main() -> None:
    rate, duration = (20.0, 20.0) if TINY else (200.0, 300.0)
    trace_config = TraceConfig(rate=rate, duration=duration, output_tokens=40)
    pool = ColocatedPool(
        instance=InstanceSpec(LLAMA3_8B, H100, 1),
        n_instances=4,
        max_decode_batch=128,
    )
    sim_time = duration + 120.0

    exact = ColocatedSimulator(pool, SimConfig(max_sim_time=sim_time)).run(
        generate_trace(trace_config, seed=0)
    )
    print(f"exact      : {exact.describe().splitlines()[0]}")
    print(f"             TTFT p50/p99 {exact.ttft_p50 * 1e3:.1f}/{exact.ttft_p99 * 1e3:.1f} ms")

    streaming = ColocatedSimulator(
        pool, SimConfig(max_sim_time=sim_time, metrics="streaming")
    ).run(iter_trace(trace_config, seed=0, window=5.0))
    print(f"streaming  : {streaming.describe().splitlines()[0]}")
    print(
        f"             TTFT p50/p99 {streaming.ttft_p50 * 1e3:.1f}/"
        f"{streaming.ttft_p99 * 1e3:.1f} ms (sketch estimates, lazy trace)"
    )

    sharded = run_sharded(
        pool,
        iter_trace(trace_config, seed=0, window=5.0),
        SimConfig(max_sim_time=sim_time),
        shards=2,
    )
    print(f"sharded x2 : {sharded.describe().splitlines()[0]}")
    print(
        f"             TTFT p50/p99 {sharded.ttft_p50 * 1e3:.1f}/"
        f"{sharded.ttft_p99 * 1e3:.1f} ms (merged shard sketches)"
    )

    print(
        "\nThe streaming paths hold sketches (a few KiB) instead of "
        "per-request rows: memory no longer grows with the trace."
    )


if __name__ == "__main__":
    main()
