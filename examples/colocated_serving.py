#!/usr/bin/env python3
"""Colocated (SARATHI-style) vs phase-split (Splitwise-style) serving.

The paper's case study assumes phases run on *separate* Lite-GPU pools, but
it cites SARATHI's chunked prefill as the main alternative: one pool whose
instances piggyback bounded prompt chunks on decode iterations.  This
example runs both deployment shapes on the same multi-tenant trace — a
chatty short-output tenant merged with a long-prompt summarization tenant —
at equal total SMs, under each scheduling policy bundle.

Run:  python examples/colocated_serving.py
"""

from __future__ import annotations

import os

from repro.analysis.report import simulation_table
from repro.cluster.policies import POLICY_BUNDLES
from repro.cluster.scheduler import ColocatedPool, InstanceSpec, PhasePools
from repro.cluster.simulator import ColocatedSimulator, ServingSimulator, SimConfig
from repro.hardware.gpu import LITE_MEMBW, LITE_NETBW_FLOPS
from repro.workloads.models import LLAMA3_70B
from repro.workloads.traces import TraceConfig, generate_trace, merge_traces

TINY = os.environ.get("REPRO_EXAMPLE_TINY") == "1"  # CI smoke mode: tiny traces


def multi_tenant_trace() -> list:
    chat = generate_trace(
        TraceConfig(rate=4.0, duration=8.0 if TINY else 60.0, prompt_tokens=500, output_tokens=200), seed=7
    )
    summarize = generate_trace(
        TraceConfig(rate=2.0, duration=8.0 if TINY else 60.0, prompt_tokens=3000, output_tokens=80), seed=8
    )
    return merge_traces(chat, summarize)


def main() -> None:
    trace = multi_tenant_trace()
    print(f"trace: {len(trace)} requests (chat + summarization tenants)\n")
    config = SimConfig(max_sim_time=900.0)

    # Equal silicon: 32 Lite GPUs either split 16/16 across phases or pooled.
    split = PhasePools(
        prefill=InstanceSpec(LLAMA3_70B, LITE_NETBW_FLOPS, 8),
        n_prefill=2,
        decode=InstanceSpec(LLAMA3_70B, LITE_MEMBW, 8),
        n_decode=2,
        max_prefill_batch=4,
        max_decode_batch=256,
    )
    colocated = ColocatedPool(
        instance=InstanceSpec(LLAMA3_70B, LITE_MEMBW, 8),
        n_instances=4,
        max_decode_batch=256,
        chunk_tokens=512,
    )

    reports = {}
    for policy in POLICY_BUNDLES.names():
        reports[f"phase-split/{policy}"] = ServingSimulator(
            split, config, policies=policy
        ).run(trace)
        reports[f"colocated/{policy}"] = ColocatedSimulator(
            colocated, config, policies=policy
        ).run(trace)

    print(simulation_table(reports, title="Llama3-70B, 32 Lite GPUs, by shape and policy"))
    print(
        "\nReading: the phase-split shape buys prefill its own overclocked\n"
        "pool, so TTFT stays low even when summarization prompts arrive.\n"
        "The colocated shape is highly routing-sensitive: index-order\n"
        "dispatch (fcfs) convoys prompts behind one instance's chunk queue,\n"
        "while least-loaded routing spreads them and nearly matches the\n"
        "split deployment — a policy change, not an engine change."
    )


if __name__ == "__main__":
    main()
