#!/usr/bin/env python3
"""Capacity planning: performance per dollar across GPU types.

Section 4 closes on "performance per $-cost, which is the primary metric for
cloud operators".  This example prices whole deployments (GPU manufacturing
cost model + network fabric) and ranks Table 1's GPU types by decode and
prefill throughput per dollar for each paper model, then prints the
cost-throughput Pareto frontier across all evaluated configurations.

Run:  python examples/capacity_planning.py
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.cluster.spec import ClusterSpec
from repro.core.metrics import pareto_front
from repro.core.search import search_best_config
from repro.hardware.cost import CostModel
from repro.hardware.gpu import H100, LITE, LITE_MEMBW, LITE_NETBW, LITE_NETBW_FLOPS, LITE_MEMBW_NETBW
from repro.workloads.models import PAPER_MODELS

GPUS = (H100, LITE, LITE_NETBW, LITE_NETBW_FLOPS, LITE_MEMBW, LITE_MEMBW_NETBW)


def deployment_cost(gpu, n_gpus: int, cost_model: CostModel) -> float:
    """GPU BOM + network capex for an n-GPU pod of this type."""
    topology = "switched" if gpu.name == "H100" else "circuit"
    cluster = ClusterSpec(gpu, n_gpus, topology)
    return cluster.gpu_capex(cost_model) + cluster.fabric_report().capex_usd


def main() -> None:
    cost_model = CostModel()
    for model in PAPER_MODELS:
        print(f"== {model.name} ==")
        rows = []
        points = []
        for phase in ("prefill", "decode"):
            for gpu in GPUS:
                result = search_best_config(model, gpu, phase)
                if not result.feasible:
                    rows.append([phase, gpu.name, "-", "-", "-", "infeasible"])
                    continue
                best = result.best
                cost = deployment_cost(gpu, best.n_gpus, cost_model)
                tput = best.result.tokens_per_s
                rows.append(
                    [
                        phase,
                        gpu.name,
                        best.n_gpus,
                        f"{tput:,.0f}",
                        f"${cost:,.0f}",
                        f"{tput / cost * 1000:.1f}",
                    ]
                )
                if phase == "decode":
                    points.append((cost, tput))
        print(
            format_table(
                ["phase", "gpu", "#GPUs", "tokens/s", "deployment cost", "tok/s per k$"],
                rows,
            )
        )
        frontier = pareto_front(points)
        pretty = ", ".join(f"(${c:,.0f} -> {t:,.0f} tok/s)" for c, t in frontier)
        print(f"decode cost-throughput Pareto frontier: {pretty}\n")

    print(
        "Reading: even where a Lite variant only *matches* H100 throughput,\n"
        "its deployment costs less (yield + packaging), so tokens per dollar\n"
        "improve — the paper's bottom-line argument."
    )


if __name__ == "__main__":
    main()
