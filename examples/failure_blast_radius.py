#!/usr/bin/env python3
"""Blast radius and hot spares: the Section 3 fault-tolerance study.

Simulates 90 days of failures for an H100 fleet and an equal-silicon Lite
fleet serving four Llama3-405B-class instances, sweeping hot-spare budgets.
Shows the paper's two claims:

- hardware blast radius: one Lite failure removes 4x less capacity;
- spare overhead: one spare's silicon is 4x cheaper, so the Lite fleet
  reaches the same availability at a fraction of the spare cost.

Run:  python examples/failure_blast_radius.py
"""

from __future__ import annotations

import os

from repro.analysis.tables import format_table
from repro.cluster.availability import SparePolicy, simulate_availability
from repro.cluster.failures import (
    BlastRadius,
    FailureModel,
    InstanceReliability,
    scaled_lite_failure_model,
)
from repro.units import DAY, HOUR

TINY = os.environ.get("REPRO_EXAMPLE_TINY") == "1"  # CI smoke mode: short horizon
HORIZON = (7 if TINY else 90) * DAY
GPU_MODEL = FailureModel(mtbf=400 * HOUR, mttr=24 * HOUR)  # aggressive regime
LITE_MODEL = scaled_lite_failure_model(GPU_MODEL, 4)  # area-scaled reliability


def main() -> None:
    print("Hardware blast radius")
    print(f"  one H100 failure: {BlastRadius(1, 132).capacity_fraction(8):.1%} of an 8-GPU cluster")
    print(f"  one Lite failure: {BlastRadius(1, 33).capacity_fraction(32):.1%} of a 32-GPU cluster\n")

    inst_h100 = InstanceReliability(8, GPU_MODEL)
    inst_lite = InstanceReliability(32, LITE_MODEL)
    print("Instance MTBF (any-GPU-fails, software blast radius)")
    print(f"  8x H100 instance : {inst_h100.instance_mtbf / HOUR:.0f} h")
    print(f"  32x Lite instance: {inst_lite.instance_mtbf / HOUR:.0f} h "
          "(equal: 4x the devices at 1/4 the per-device rate)\n")

    rows = []
    for fleet, size, model, spare_counts, spare_cost_unit in (
        ("H100", 8, GPU_MODEL, (0, 1, 2, 4), 1.0),
        ("Lite", 32, LITE_MODEL, (0, 4, 8, 16), 0.25),
    ):
        for spares in spare_counts:
            result = simulate_availability(
                4, size, model, SparePolicy(spares=spares, swap_time=120.0),
                horizon=HORIZON, seed=17,
            )
            rows.append(
                [
                    fleet,
                    spares,
                    f"{spares * spare_cost_unit:.2f} H100-equiv",
                    f"{spares / (4 * size):.1%}",
                    f"{result.instance_availability:.4f}",
                    result.failures,
                    f"{result.mean_outage:.0f} s",
                ]
            )
    print(
        format_table(
            ["fleet", "spares", "spare silicon", "overhead", "availability", "failures", "mean outage"],
            rows,
            title="90-day Monte-Carlo: 4 model instances, hot-spare sweep",
        )
    )
    print(
        "\nReading: the Lite fleet buys availability in 1/4-sized, 1/4-priced\n"
        "increments — matching the H100 fleet's availability at equal spare\n"
        "silicon, with the option of finer steps in between."
    )


if __name__ == "__main__":
    main()
