#!/usr/bin/env python3
"""Power management at Lite granularity: the Section 3 energy study.

Walks the paper's two power arguments over a synthetic diurnal day:

1. serving the troughs — compare clocking policies (uniform DVFS, per-device
   power gating, joint gate+DVFS) for an H100 fleet and an equal-silicon
   Lite fleet;
2. serving the peaks — overclock the small, cool Lite dies in place, or
   wake more devices and pay the network power?

Run:  python examples/power_management.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import format_table
import os

from repro.cluster.power_manager import ClusterPowerManager
from repro.hardware.cooling import CoolingKind, CoolingModel
from repro.hardware.gpu import H100, LITE
from repro.hardware.power import ClockPolicy, PowerModel, diurnal_load_profile
from repro.units import KILOWATT


def main() -> None:
    tiny = os.environ.get("REPRO_EXAMPLE_TINY") == "1"  # CI smoke mode
    loads = diurnal_load_profile(samples=24 if tiny else 96, low=0.2, high=0.9, seed=1, noise=0.02)
    interval = 900.0  # 15-minute samples
    print(
        f"diurnal profile: min {loads.min():.2f}, mean {loads.mean():.2f}, "
        f"max {loads.max():.2f} of peak\n"
    )

    rows = []
    for name, gpu, count in (("8x H100", H100, 8), ("32x Lite", LITE, 32)):
        model = PowerModel(gpu, count)
        base = model.energy_over_profile(loads, interval, ClockPolicy.ALWAYS_BASE)
        for policy in (ClockPolicy.UNIFORM_DVFS, ClockPolicy.POWER_GATE, ClockPolicy.GATE_PLUS_DVFS):
            energy = model.energy_over_profile(loads, interval, policy)
            rows.append(
                [
                    name,
                    policy.value,
                    f"{energy / 3.6e6:.1f} kWh",
                    f"{1 - energy / base:.1%}",
                ]
            )
    print(
        format_table(
            ["fleet", "policy", "energy/day", "saving vs always-base"],
            rows,
            title="Serving the troughs (equal total silicon)",
        )
    )

    print("\nServing the peaks (one Lite group = 4 devices):")
    mgr = ClusterPowerManager(LITE, 4)
    air = CoolingModel(CoolingKind.AIR)
    headroom = air.overclock_headroom(LITE)
    print(f"  air-cooling overclock headroom of a Lite die: x{headroom:.2f}")
    rows = []
    for peak in (1.05, 1.10, 1.20, 1.40):
        strategy, power = mgr.best_peak_strategy(peak, air)
        rows.append([f"{peak:.2f}", strategy.value, f"{power / KILOWATT:.2f} kW"])
    print(format_table(["peak load", "cheapest strategy", "power"], rows))

    print(
        "\nReading: small peaks are absorbed by over-clocking the small,\n"
        "easily-cooled dies in place; past the DVFS knee (~1.1-1.2x) waking\n"
        "extra Lite-GPUs — paying their network ports — becomes cheaper.\n"
        "H100-class dies have no air-cooled overclock headroom at all."
    )


if __name__ == "__main__":
    main()
