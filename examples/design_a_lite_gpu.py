#!/usr/bin/env python3
"""Design your own Lite-GPU: sweep split factors and shoreline allocations.

The paper fixes one design point (1/4 of an H100, Table 1).  This example
uses the scaling substrate to explore the design space: for each split
factor and each way of spending the shoreline surplus (memory vs network
bandwidth), derive the GPU, check it is physically buildable (shoreline
budget, cooling), and score it on the paper's workloads.

Run:  python examples/design_a_lite_gpu.py
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.core.search import search_best_config
from repro.errors import SpecError
from repro.hardware.cooling import CoolingModel
from repro.hardware.gpu import H100
from repro.hardware.scaling import LiteScaling, derive_lite_gpu
from repro.hardware.yieldmodel import yield_gain
from repro.workloads.models import LLAMA3_70B

#: Candidate shoreline allocations: (mem boost, net boost, label).
ALLOCATIONS = [
    (1.0, 1.0, "plain split"),
    (2.0, 1.0, "all-in memory"),
    (1.0, 2.0, "all-in network"),
    (1.5, 1.5, "balanced"),
]


def main() -> None:
    h100_prefill = search_best_config(LLAMA3_70B, H100, "prefill").best_tokens_per_s_per_sm
    h100_decode = search_best_config(LLAMA3_70B, H100, "decode").best_tokens_per_s_per_sm
    cooling = CoolingModel()

    rows = []
    for split in (2, 4, 8):
        for mem_boost, net_boost, label in ALLOCATIONS:
            scaling = LiteScaling(split=split, mem_bw_boost=mem_boost, net_bw_boost=net_boost)
            try:
                scaling.validate(H100)
            except SpecError:
                rows.append([split, label, "-", "-", "-", "over shoreline budget"])
                continue
            gpu = derive_lite_gpu(H100, scaling, name=f"L{split}-{label}")
            overclock = min(1.10, cooling.overclock_headroom(gpu))
            gpu = gpu.with_clock_factor(overclock, name=gpu.name)
            prefill = search_best_config(LLAMA3_70B, gpu, "prefill").best_tokens_per_s_per_sm
            decode = search_best_config(LLAMA3_70B, gpu, "decode").best_tokens_per_s_per_sm
            rows.append(
                [
                    split,
                    label,
                    f"{yield_gain(H100.die.area_mm2, split):.2f}x",
                    f"{prefill / h100_prefill:.2f}",
                    f"{decode / h100_decode:.2f}",
                    f"overclock x{overclock:.2f}",
                ]
            )

    print(
        format_table(
            ["split", "shoreline spent on", "yield gain", "prefill vs H100", "decode vs H100", "notes"],
            rows,
            title="Custom Lite-GPU design space (Llama3-70B, Table-1 methodology)",
        )
    )
    print(
        "\nReading: the design space is a real trade — memory-heavy designs\n"
        "win decode, network-heavy designs protect prefill at high splits,\n"
        "and every split multiplies the yield advantage.  The paper's\n"
        "Table 1 variants are three corners of this space."
    )


if __name__ == "__main__":
    main()
